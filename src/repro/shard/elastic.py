"""Self-healing elastic shards: live resharding, autoscaling, supervision.

The fixed-P :class:`~repro.shard.engine.ShardedEngine` answers *how* to
split a timestamp-ordered computation; this module answers what happens
when P was wrong — because load moved, a shard died, or the operator asked
for a different topology mid-stream.  Three cooperating pieces:

* :class:`ReshardCoordinator` — changes the shard count **live**:
  quiesce-at-frontier, align every shard's source watermarks to the
  global horizon, checkpoint, rebuild the new shard set from the facade's
  command log (routed by the *new* partitioner), then atomically re-route.
* :class:`ShardSupervisor` — turns a shard failure (injected crash, hang,
  worker death) into a bounded-backoff restart from durable state instead
  of a run abort, escalating to engine-level degradation only when the
  restart budget is exhausted.
* :class:`Autoscaler` — closes the loop: watches the per-shard buffer
  depths and feedback pressure the wake-up protocol already reports, and
  asks the coordinator for one more (or one fewer) shard after sustained
  overload (or sustained idleness), with hysteresis and cooldown so a
  bursty workload does not thrash the topology.

Exactly-once across a reshard rests on two invariants:

1. **Alignment.**  Before the snapshot, the coordinator broadcasts one
   punctuation per source at the *global* horizon (the max over every
   shard's live watermark and the facade's own ingest/punctuation highs).
   Sources discard stale punctuation idempotently, so after the alignment
   wake-up every shard's per-source watermark equals the value a single
   unsharded engine would hold — the gates of the old shard set and of the
   replayed new shard set therefore agree exactly at the handoff point.
2. **Deterministic replay.**  The facade records every ``ingest``,
   ``inject_punctuation`` and ``wakeup`` it performs (mirrored to a
   durable facade WAL when a root directory is configured).  The new
   shard set is built by re-dispatching that history wake-up by wake-up,
   with ingests routed by the **new** partitioner and punctuation
   broadcast — so each new shard ends up in exactly the state it would
   have reached had the topology been the new one from the start.  All
   replay outputs are discarded; the old shard set already emitted them.

Epochs make the switch crash-atomic: each topology lives in its own
``epoch-NNNN`` state directory, and a ``CURRENT`` manifest (written with
an atomic rename) names the authoritative one.  A crash before the flip
recovers the old epoch (stale newer directories are purged); a crash
after it recovers the new epoch, whose shards were checkpointed before
the flip.  See DESIGN.md §4k for the full protocol and proof sketch.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..core.errors import ReproError
from ..core.tuples import LATENT_TS, TimestampKind
from ..recovery.manager import partition_wal_history, wal_history
from ..recovery.wal import WAL_MAGIC, WriteAheadLog
from .backends import ShardError, ShardResult, make_backend
from .engine import ShardedEngine, ShardedRecoveryReport
from .frontier import MergedRecord
from .partition import HashPartitioner

__all__ = ["ReshardReport", "ReshardCoordinator", "ShardSupervisor",
           "Autoscaler", "ElasticShardedEngine", "RESHARD_PHASES"]

#: The coordinator's phases, in execution order.  Fault hooks registered
#: on ``engine.reshard_hooks`` are invoked with each phase name as it
#: begins — the crash-matrix tests inject a simulated crash at every one.
RESHARD_PHASES = ("quiesce", "align", "snapshot", "restore",
                  "reroute", "resume")


@dataclass(slots=True)
class ReshardReport:
    """What one live topology change did.

    ``released`` holds the merge records the quiesce/align wake-ups let
    through — they belong to the *output stream*, and a driver must
    account for them exactly like ordinary wake-up returns.
    """

    old_shards: int = 0
    new_shards: int = 0
    epoch: int = 0
    #: Distinct keys seen so far whose route changed under the new
    #: partitioner, and the total distinct keys — the jump-hash movement
    #: bound says migrated/total ≈ 1/new_shards for a grow step.
    migrated_keys: int = 0
    total_keys: int = 0
    #: Global frontier at the handoff point (after alignment).
    frontier: float = float("-inf")
    released: list = field(default_factory=list)
    replayed_ingests: int = 0
    replayed_puncts: int = 0
    #: Outputs re-derived (and discarded) during replay — the duplication
    #: the old shard set already emitted, proof the discard mattered.
    discarded_outputs: int = 0
    #: Wall-clock seconds the facade was paused (no new wake-ups served).
    pause_seconds: float = 0.0
    reason: str = "manual"

    @property
    def direction(self) -> str:
        return f"{self.old_shards}->{self.new_shards}"

    def as_dict(self) -> dict:
        return {
            "direction": self.direction, "epoch": self.epoch,
            "migrated_keys": self.migrated_keys,
            "total_keys": self.total_keys, "frontier": self.frontier,
            "released": len(self.released),
            "replayed_ingests": self.replayed_ingests,
            "replayed_puncts": self.replayed_puncts,
            "discarded_outputs": self.discarded_outputs,
            "pause_seconds": self.pause_seconds, "reason": self.reason,
        }


class ReshardCoordinator:
    """Executes one live shard-count change on an elastic engine.

    The six phases (:data:`RESHARD_PHASES`):

    1. **quiesce** — flush any exchange backlog with a normal wake-up, so
       the handoff happens at a wake-up boundary.
    2. **align** — broadcast one punctuation per source at the global
       horizon and wake up again: every shard's watermarks now equal the
       single-engine values (stale punctuation is discarded, so this is
       idempotent per shard).
    3. **snapshot** — checkpoint every old shard (durable mode only);
       the old epoch stays recoverable until the flip.
    4. **restore** — build the new shard set in a fresh epoch directory
       and replay the facade command log into it, routed by the new
       partitioner, discarding all outputs; checkpoint the new epoch.
    5. **reroute** — atomically flip the ``CURRENT`` manifest, then swap
       the facade's backend/partitioner/tracker to the new topology.
    6. **resume** — normal wake-ups continue against the new shards.

    A failure in phases 1–4 leaves the old topology fully live (the
    half-built epoch is closed and will be purged on the next recovery);
    a failure after the flip leaves the new topology durable.
    """

    def __init__(self, engine: "ElasticShardedEngine") -> None:
        self.engine = engine

    def _hook(self, phase: str) -> None:
        for hook in self.engine.reshard_hooks:
            hook(phase)

    def run(self, new_shards: int, *, reason: str = "manual") -> ReshardReport:
        e = self.engine
        new_shards = int(new_shards)
        if new_shards < 1:
            raise ReproError(f"shard count must be positive, got {new_shards}")
        if e._resharding:
            raise ReproError("reshard already in progress")
        report = ReshardReport(old_shards=e.shard_count,
                               new_shards=new_shards, reason=reason)
        if new_shards == e.shard_count:
            report.epoch = e._epoch
            return report
        started = _time.perf_counter()
        e._resharding = True
        e.reshard_released = report.released
        try:
            self._hook("quiesce")
            if e._pending_puncts or any(e._pending_ingests):
                report.released.extend(e.wakeup())
            self._hook("align")
            for source, ts in sorted(e._alignment_targets().items()):
                e.inject_punctuation(source, ts, origin="reshard")
            if e._pending_puncts:
                report.released.extend(e.wakeup())
            report.frontier = e.tracker.global_frontier()
            self._hook("snapshot")
            if e.state_dir is not None:
                e.backend.checkpoint_all()
            self._hook("restore")
            report.epoch = e._epoch + 1
            backend, partitioner, epoch_dir = self._build_epoch(
                new_shards, report)
            try:
                self._hook("reroute")
                self._flip(backend, partitioner, epoch_dir, report)
            except BaseException:
                try:
                    backend.close()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
                raise
            self._hook("resume")
        finally:
            e._resharding = False
        report.pause_seconds = _time.perf_counter() - started
        e.reshards.append(report)
        if e.bus is not None:
            e.bus.shard(kind="reshard", shard=-1, time=e._drive_now,
                        frontier=report.frontier,
                        count=report.migrated_keys,
                        value=report.pause_seconds,
                        detail=report.direction)
        return report

    # ------------------------------------------------------------------ #
    # Phase bodies

    def _build_epoch(self, new_shards: int, report: ReshardReport):
        """Build + replay + checkpoint the new shard set; close on failure."""
        e = self.engine
        epoch_dir = None
        if e.root_dir is not None:
            epoch_dir = e.root_dir / f"epoch-{report.epoch:04d}"
            if epoch_dir.exists():
                shutil.rmtree(epoch_dir)
        partitioner = HashPartitioner(new_shards, e.partitioner.key_fn)
        base_kwargs = e._shard_kwargs

        def shard_kwargs(index: int) -> dict:
            kwargs = dict(base_kwargs(index))
            kwargs["state_dir"] = (None if epoch_dir is None
                                   else epoch_dir / f"shard-{index:02d}")
            return kwargs

        backend = make_backend(e.backend_kind, new_shards, build=e._build,
                               shard_kwargs=shard_kwargs, **e._backend_opts)
        try:
            self._replay(backend, partitioner, new_shards, report)
            if epoch_dir is not None:
                backend.checkpoint_all()
        except BaseException:
            try:
                backend.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            raise
        return backend, partitioner, epoch_dir

    def _replay(self, backend, partitioner: HashPartitioner,
                new_shards: int, report: ReshardReport) -> None:
        """Re-dispatch the facade history wake-up by wake-up, new routing."""
        e = self.engine
        keys: set = set()
        moved: set = set()
        key_fn = e.partitioner.key_fn
        segment: list = []
        for rec in e._log:
            if rec["kind"] != "wakeup":
                segment.append(rec)
                if rec["kind"] == "ingest":
                    key = (key_fn(rec["payload"]) if key_fn is not None
                           else rec["payload"])
                    keys.add(key)
                    if e.partitioner(key) != partitioner(key):
                        moved.add(key)
                continue
            scripts = partition_wal_history(
                segment, partitioner.shard_for_payload, new_shards)
            segment = []
            commands = []
            for index in range(new_shards):
                ingests = [(r["source"], r["payload"], r["time"], r["ts"])
                           for r in scripts[index] if r["kind"] == "ingest"]
                puncts = [(r["source"], r["ts"], r["origin"], r["periodic"])
                          for r in scripts[index] if r["kind"] == "punct"]
                commands.append((ingests, puncts, rec["now"], rec["clamp"]))
                report.replayed_ingests += len(ingests)
            report.replayed_puncts += len(commands[0][1]) if commands else 0
            for result in backend.apply_all(commands):
                report.discarded_outputs += len(result.outputs)
        if segment:  # pre-wakeup tail: impossible after quiesce, but be safe
            raise ReproError("reshard replay found commands with no wakeup "
                             "marker; quiesce did not flush the exchange")
        report.migrated_keys = len(moved)
        report.total_keys = len(keys)

    def _flip(self, backend, partitioner: HashPartitioner,
              epoch_dir: Path | None, report: ReshardReport) -> None:
        """Point the facade at the new topology; the commit point."""
        e = self.engine
        if e.root_dir is not None:
            _write_manifest(e.root_dir, report.epoch, report.new_shards)
        old_backend = e.backend
        e.backend = backend
        if hasattr(backend, "on_retry"):
            backend.on_retry = e._note_retry
        e.partitioner = partitioner
        e.shard_count = report.new_shards
        e.state_dir = epoch_dir
        e._epoch = report.epoch
        e._pending_ingests = [[] for _ in range(report.new_shards)]
        e.tracker.resize(report.new_shards, floor=report.frontier)
        e._sent = self._replay_tally(report.new_shards, partitioner)
        e._last_depths = []
        try:
            old_backend.close()
        except Exception:  # noqa: BLE001 - the old epoch is already durable
            pass

    def _replay_tally(self, new_shards: int,
                      partitioner: HashPartitioner) -> dict[int, dict[str, int]]:
        """Per-shard acked-ingest counts under the new routing."""
        sent: dict[int, dict[str, int]] = {}
        for rec in self.engine._log:
            if rec["kind"] != "ingest":
                continue
            shard = partitioner.shard_for_payload(rec["payload"])
            tally = sent.setdefault(shard, {})
            tally[rec["source"]] = tally.get(rec["source"], 0) + 1
        return sent


class ShardSupervisor:
    """Bounded-backoff restart policy for failed shards.

    Bound to an :class:`ElasticShardedEngine`, it replaces the all-or-
    nothing ``apply_all`` wake-up with the containment path: healthy
    shards keep their results, and a shard that raised (crash, hang
    timeout, dead worker) is restarted from its checkpoint + WAL and the
    wake-up's command re-applied — minus the per-source ingest prefix the
    restarted shard already recovered, so nothing is applied twice.

    Restarts back off exponentially (``backoff_base * backoff_factor**i``
    capped at ``backoff_cap``, plus seeded jitter) through an injectable
    ``sleep`` so tests never wait.  When ``max_restarts`` attempts all
    fail the supervisor escalates: the engine is flagged ``degraded`` and
    the original failure class propagates to the driver.
    """

    def __init__(self, *, max_restarts: int = 3, backoff_base: float = 0.05,
                 backoff_factor: float = 2.0, backoff_cap: float = 1.0,
                 jitter: float = 0.1, seed: int = 0,
                 sleep: Callable[[float], None] | None = None) -> None:
        if max_restarts < 1:
            raise ReproError("supervisor needs max_restarts >= 1")
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap = float(backoff_cap)
        self.jitter = float(jitter)
        self._rng = random.Random(f"supervisor:{seed}")
        self._sleep = sleep if sleep is not None else _time.sleep
        self.engine: ElasticShardedEngine | None = None
        self.restarts = 0
        self.escalations = 0
        self.backoffs: list[float] = []

    def bind(self, engine: "ElasticShardedEngine") -> "ShardSupervisor":
        self.engine = engine
        return self

    def apply(self, commands) -> list[ShardResult]:
        """The supervised wake-up: contain, restart, re-apply."""
        engine = self.engine
        results = engine.backend.apply_each(commands)
        for index, result in enumerate(results):
            if isinstance(result, Exception):
                results[index] = self._heal(index, commands[index], result)
        return results

    def _heal(self, index: int, command, failure: Exception) -> ShardResult:
        engine = self.engine
        last = failure
        for attempt in range(1, self.max_restarts + 1):
            backoff = min(self.backoff_cap,
                          self.backoff_base
                          * self.backoff_factor ** (attempt - 1))
            backoff *= 1.0 + self.jitter * self._rng.random()
            self.backoffs.append(backoff)
            self._sleep(backoff)
            if engine.bus is not None:
                engine.bus.shard(
                    kind="supervisor", shard=index, time=engine._drive_now,
                    count=attempt, value=backoff,
                    detail=f"restart after {type(last).__name__}")
            try:
                report = engine.backend.restart_shard(index)
                result = engine.backend.apply_one(
                    index, self._deduct_applied(index, command, report))
            except Exception as exc:  # noqa: BLE001 - retry loop by contract
                last = exc
                continue
            self.restarts += 1
            return result
        self.escalations += 1
        engine.degraded = True
        if engine.bus is not None:
            engine.bus.shard(kind="supervisor", shard=index,
                             time=engine._drive_now, count=self.max_restarts,
                             detail="escalated")
        raise ShardError(
            f"shard {index} still failing after {self.max_restarts} "
            f"restart attempts; engine degraded") from last

    def _deduct_applied(self, index: int, command, report):
        """Trim the command prefix the restarted shard already recovered.

        The shard's WAL counts every ingest it durably logged — including
        those of the command that crashed mid-apply.  Subtracting the
        facade's *acknowledged* count per source leaves exactly the number
        of this command's ingests that must be skipped on re-apply
        (commands apply in order, so per-source prefix matching is exact).
        Punctuation is re-applied in full: sources discard stale
        punctuation idempotently.
        """
        ingests, puncts, now, clamp = command
        acked = self.engine._sent.get(index, {})
        skip = {source: max(0, count - acked.get(source, 0))
                for source, count in report.ingests_by_source.items()}
        kept = []
        for item in ingests:
            if skip.get(item[0], 0) > 0:
                skip[item[0]] -= 1
            else:
                kept.append(item)
        return (kept, puncts, now, clamp)


class Autoscaler:
    """Hysteresis policy mapping load signals to shard-count requests.

    Consumes what the wake-up protocol already measures — per-shard
    buffer depths (``ShardResult.depth``, the ``repro_shard_depth``
    signal) and the aggregated feedback pressure — and requests a split
    after ``sustain`` consecutive overloaded observations, or a merge
    after ``sustain`` consecutive drained ones.  Every decision starts a
    ``cooldown`` during which no further decision is made, so the
    topology cannot thrash faster than the reshard pause amortizes.
    """

    def __init__(self, *, high_depth: int = 64, low_depth: int = 4,
                 sustain: int = 3, cooldown: int = 8, min_shards: int = 1,
                 max_shards: int = 8, step: int = 1,
                 high_pressure: float | None = None) -> None:
        if low_depth >= high_depth:
            raise ReproError("autoscaler needs low_depth < high_depth "
                             "(the hysteresis band)")
        if min_shards < 1 or max_shards < min_shards:
            raise ReproError("autoscaler needs 1 <= min_shards <= max_shards")
        self.high_depth = int(high_depth)
        self.low_depth = int(low_depth)
        self.sustain = int(sustain)
        self.cooldown = int(cooldown)
        self.min_shards = int(min_shards)
        self.max_shards = int(max_shards)
        self.step = int(step)
        self.high_pressure = high_pressure
        self._hot = 0
        self._cold = 0
        self._wait = 0
        #: ``(verb, target, peak_depth)`` per decision, for tests/summary.
        self.decisions: list[tuple[str, int, int]] = []

    def observe(self, shard_count: int, depths, pressure: float = 0.0
                ) -> int | None:
        """Feed one wake-up's signals; returns a target count or None."""
        if self._wait > 0:
            self._wait -= 1
            return None
        peak = max(depths, default=0)
        hot = peak >= self.high_depth or (
            self.high_pressure is not None and pressure >= self.high_pressure)
        if hot:
            self._hot += 1
            self._cold = 0
        elif peak <= self.low_depth:
            self._cold += 1
            self._hot = 0
        else:
            self._hot = 0
            self._cold = 0
        if self._hot >= self.sustain and shard_count < self.max_shards:
            target = min(self.max_shards, shard_count + self.step)
            self._hot = 0
            self._wait = self.cooldown
            self.decisions.append(("split", target, peak))
            return target
        if self._cold >= self.sustain and shard_count > self.min_shards:
            target = max(self.min_shards, shard_count - self.step)
            self._cold = 0
            self._wait = self.cooldown
            self.decisions.append(("merge", target, peak))
            return target
        return None


def _write_manifest(root: Path, epoch: int, shards: int) -> None:
    """Atomically point ``root/CURRENT`` at an epoch (the commit point)."""
    tmp = root / "CURRENT.tmp"
    tmp.write_text(json.dumps({"epoch": epoch, "shards": shards}))
    os.replace(tmp, root / "CURRENT")


def _read_manifest(root: Path) -> dict | None:
    current = root / "CURRENT"
    if not current.exists():
        return None
    return json.loads(current.read_text())


class ElasticShardedEngine(ShardedEngine):
    """A :class:`ShardedEngine` whose shard count can change while live.

    Extra arguments over the base:

    Args:
        supervisor: A :class:`ShardSupervisor` to own shard failures;
            requires ``state_dir`` (restart recovers from durable state).
        autoscaler: An :class:`Autoscaler` consulted after every wake-up;
            its target is applied at the *start* of the next wake-up.

    ``state_dir`` becomes the elastic **root**: each topology lives under
    ``root/epoch-NNNN`` with a ``CURRENT`` manifest naming the live one,
    and the facade's own command history is mirrored to ``root/facade``.
    A fresh facade pointed at an existing root adopts the manifest's
    topology (the manifest's shard count overrides the argument).
    """

    def __init__(self, build: Callable[[], Any], *, shards: int,
                 key: str | Callable[[Any], Any],
                 supervisor: ShardSupervisor | None = None,
                 autoscaler: Autoscaler | None = None,
                 state_dir: str | Path | None = None, **kwargs) -> None:
        root = Path(state_dir) if state_dir is not None else None
        epoch = 0
        if root is not None:
            manifest = _read_manifest(root)
            if manifest is not None:
                epoch = int(manifest["epoch"])
                shards = int(manifest["shards"])
            root.mkdir(parents=True, exist_ok=True)
            for stale in root.glob("epoch-*"):
                try:
                    number = int(stale.name.split("-", 1)[1])
                except ValueError:
                    continue
                if number > epoch:  # built but never committed: purge
                    shutil.rmtree(stale, ignore_errors=True)
            if manifest is None:
                _write_manifest(root, epoch, int(shards))
        epoch_dir = None if root is None else root / f"epoch-{epoch:04d}"
        super().__init__(build, shards=shards, key=key,
                         state_dir=epoch_dir, **kwargs)
        self.root_dir = root
        self._epoch = epoch
        self._facade_wal: WriteAheadLog | None = None
        if root is not None:
            (root / "facade").mkdir(parents=True, exist_ok=True)
            self._facade_wal = WriteAheadLog(root / "facade" / "wal.log")
        #: The facade command log: every ingest / punctuation / wakeup in
        #: dispatch order — the reshard replay script.
        self._log: list[dict] = []
        self._data_high: dict[str, float] = {}
        self._punct_high: dict[str, float] = {}
        #: Per-shard acknowledged ingest counts ``{shard: {source: n}}``
        #: under the *current* partitioner — the supervisor's dedup ledger.
        self._sent: dict[int, dict[str, int]] = {}
        self._last_depths: list[int] = []
        self._last_pressure = 0.0
        self._scale_target: int | None = None
        self._resharding = False
        self.degraded = False
        #: Phase hooks ``f(phase_name)`` called as each reshard phase
        #: begins — the fault-injection seam (:class:`repro.faults.\
        #: ReshardCrash` appends here).
        self.reshard_hooks: list[Callable[[str], None]] = []
        #: Records released by the coordinator's internal wake-ups during
        #: the most recent (possibly crashed) reshard — a driver that
        #: catches a mid-reshard crash accounts these like wakeup returns.
        self.reshard_released: list[MergedRecord] = []
        self.reshards: list[ReshardReport] = []
        self.supervisor = supervisor.bind(self) if supervisor else None
        self.autoscaler = autoscaler
        probe = build()
        self._source_kinds = {src.name: src.timestamp_kind
                              for src in probe.sources()}

    # ------------------------------------------------------------------ #
    # Command logging

    def _log_record(self, record: dict) -> None:
        self._log.append(record)
        if self._facade_wal is not None:
            self._facade_wal.append(record)

    def ingest(self, source: str, payload: Any, *, time: float,
               ts: float | None = None) -> int:
        self._log_record({"kind": "ingest", "source": source,
                          "payload": payload, "time": time, "ts": ts})
        high = time if ts is None else ts
        if high > self._data_high.get(source, LATENT_TS):
            self._data_high[source] = high
        return super().ingest(source, payload, time=time, ts=ts)

    def inject_punctuation(self, source: str, ts: float, *,
                           origin: str = "", periodic: bool = False) -> None:
        self._log_record({"kind": "punct", "source": source, "ts": ts,
                          "origin": origin, "periodic": periodic})
        if ts > self._punct_high.get(source, LATENT_TS):
            self._punct_high[source] = ts
        super().inject_punctuation(source, ts, origin=origin,
                                   periodic=periodic)

    # ------------------------------------------------------------------ #
    # Driving

    def wakeup(self) -> list[MergedRecord]:
        """One elastic wake-up: apply any pending scale decision first."""
        released: list[MergedRecord] = []
        if self._scale_target is not None and not self._resharding:
            target, self._scale_target = self._scale_target, None
            if target != self.shard_count:
                released.extend(
                    self.reshard(target, reason="autoscale").released)
        clamp = self.global_pressure if self.feedback_enabled else None
        self._log_record({"kind": "wakeup", "now": self._drive_now,
                          "clamp": clamp})
        released.extend(super().wakeup())
        if self.autoscaler is not None and not self._resharding:
            target = self.autoscaler.observe(
                self.shard_count, self._last_depths, self._last_pressure)
            if target is not None:
                self._scale_target = target
                if self.bus is not None:
                    self.bus.shard(
                        kind="scale", shard=-1, time=self._drive_now,
                        count=target,
                        value=float(max(self._last_depths, default=0)),
                        detail=("split" if target > self.shard_count
                                else "merge"))
        return released

    def _apply(self, commands) -> list[ShardResult]:
        if self.supervisor is not None:
            results = self.supervisor.apply(commands)
        else:
            results = self.backend.apply_all(commands)
        for index, command in enumerate(commands):
            if not command[0]:
                continue
            tally = self._sent.setdefault(index, {})
            for item in command[0]:
                tally[item[0]] = tally.get(item[0], 0) + 1
        self._last_depths = [result.depth for result in results]
        self._last_pressure = max(
            (result.pressure for result in results), default=0.0)
        return results

    # ------------------------------------------------------------------ #
    # Resharding

    def reshard(self, new_shards: int, *, reason: str = "manual"
                ) -> ReshardReport:
        """Change the live shard count to ``new_shards``; see
        :class:`ReshardCoordinator` for the protocol."""
        return ReshardCoordinator(self).run(new_shards, reason=reason)

    def _alignment_targets(self) -> dict[str, float]:
        """Per-source global horizon: the alignment punctuation values.

        For each non-latent source, the max over every shard's live
        watermark and the facade's own ingest/punctuation highs — exactly
        the watermark a single unsharded engine would hold, since that is
        the max over all data and punctuation timestamps ever admitted.
        """
        targets: dict[str, float] = {}
        for summary in self.backend.summaries():
            for name, horizon in summary.sources.items():
                high = max(horizon.get("watermark", LATENT_TS),
                           horizon.get("last_data_ts", LATENT_TS))
                if high > targets.get(name, LATENT_TS):
                    targets[name] = high
        for highs in (self._data_high, self._punct_high):
            for name, high in highs.items():
                if high > targets.get(name, LATENT_TS):
                    targets[name] = high
        return {name: ts for name, ts in targets.items()
                if ts > LATENT_TS
                and self._source_kinds.get(name) is not TimestampKind.LATENT}

    # ------------------------------------------------------------------ #
    # Durability

    def recover(self) -> ShardedRecoveryReport:
        """Recover the manifest-selected epoch, then rebuild the facade log.

        The facade WAL is written *before* dispatch, so after a crash it
        may run ahead of what any shard durably holds.  Each record is
        kept only within the recovered shards' budgets — ingests while the
        destination shard's per-source replay count lasts (prefix
        matching: dispatch order equals log order), punctuation up to its
        maximum per-shard occurrence count (shard WALs log punctuation
        even when the source discards it, so presence proves dispatch) —
        and the log is truncated after the last surviving command.  The
        rebuilt history is atomically rewritten to disk, so a reshard
        after recovery replays exactly the durable prefix.
        """
        report = super().recover()
        if self.root_dir is None:
            return report
        records = wal_history(self.root_dir / "facade")
        ingest_budget = {shard: dict(counts) for shard, counts
                         in report.ingests_by_shard.items()}
        punct_budget: dict[tuple, int] = {}
        for index in range(self.shard_count):
            counts: dict[tuple, int] = {}
            for rec in wal_history(self.state_dir / f"shard-{index:02d}"):
                if rec["kind"] == "punct":
                    key = (rec["source"], rec["ts"], rec.get("origin", ""))
                    counts[key] = counts.get(key, 0) + 1
            for key, count in counts.items():
                punct_budget[key] = max(punct_budget.get(key, 0), count)
        kept: list[dict] = []
        last_command = -1
        for rec in records:
            rec = dict(rec)
            kind = rec["kind"]
            if kind == "ingest":
                shard = self.partitioner.shard_for_payload(rec["payload"])
                budget = ingest_budget.get(shard, {})
                if budget.get(rec["source"], 0) <= 0:
                    continue
                budget[rec["source"]] -= 1
                last_command = len(kept)
            elif kind == "punct":
                key = (rec["source"], rec["ts"], rec.get("origin", ""))
                if punct_budget.get(key, 0) <= 0:
                    continue
                punct_budget[key] -= 1
                last_command = len(kept)
            kept.append(rec)
        # Drop the tail the crash cut off: trailing wake-up markers (and
        # anything after the last surviving command) never reached a shard.
        del kept[last_command + 2:]
        self._data_high = {}
        self._punct_high = {}
        for rec in kept:
            if rec["kind"] == "ingest":
                high = rec["time"] if rec["ts"] is None else rec["ts"]
                if high > self._data_high.get(rec["source"], LATENT_TS):
                    self._data_high[rec["source"]] = high
                if rec["time"] > self._drive_now:
                    self._drive_now = rec["time"]
            elif rec["kind"] == "punct":
                if rec["ts"] > self._punct_high.get(rec["source"], LATENT_TS):
                    self._punct_high[rec["source"]] = rec["ts"]
            elif rec["now"] > self._drive_now:
                self._drive_now = rec["now"]
        if kept and kept[-1]["kind"] != "wakeup":
            # The final marker's frame was torn off the facade WAL; the
            # shards saw the dispatch (their budgets covered it), so
            # restore the boundary at the rebuilt horizon.
            kept.append({"kind": "wakeup", "now": self._drive_now,
                         "clamp": None})
        self._rewrite_facade_wal(kept)
        self._log = kept
        self._sent = {shard: dict(counts) for shard, counts
                      in report.ingests_by_shard.items()}
        return report

    def _rewrite_facade_wal(self, kept: list[dict]) -> None:
        facade = self.root_dir / "facade"
        if self._facade_wal is not None:
            self._facade_wal.close()
        tmp = facade / "wal.tmp"
        if tmp.exists():
            tmp.unlink()
        if kept:
            log = WriteAheadLog(tmp, fsync=False)
            for rec in kept:
                log.append(rec)
            log.close()
        else:
            tmp.write_bytes(WAL_MAGIC)
        os.replace(tmp, facade / "wal.log")
        self._facade_wal = WriteAheadLog(facade / "wal.log")

    def close(self, *, flush: bool = True) -> list[MergedRecord]:
        remaining = super().close(flush=flush)
        if self._facade_wal is not None:
            self._facade_wal.close()
        return remaining

    # ------------------------------------------------------------------ #
    # Introspection

    def summary(self) -> dict:
        out = super().summary()
        out["epoch"] = self._epoch
        out["reshards"] = [report.as_dict() for report in self.reshards]
        out["degraded"] = self.degraded
        if self.supervisor is not None:
            out["supervisor"] = {
                "restarts": self.supervisor.restarts,
                "escalations": self.supervisor.escalations,
            }
        if self.autoscaler is not None:
            out["autoscale_decisions"] = list(self.autoscaler.decisions)
        return out
