"""Workload driver for the sharded engine — the `Simulation` of shard land.

:class:`ShardedSimulation` mirrors the drive surface of
:class:`repro.sim.kernel.Simulation` (attach arrival schedules, optional
periodic heartbeats, ``run(until)``, ``summary()``) but pushes tuples
through a :class:`~repro.shard.engine.ShardedEngine` instead of a single
:class:`ExecutionEngine`: arrivals are routed by partition key, heartbeats
are broadcast to every shard, and the returned output is the
frontier-merged, globally timestamp-ordered record stream.

Fault plans from :mod:`repro.faults` compose unchanged — arrival-level
specs wrap each source's schedule *before* routing, so the same seeded
plan faults the same tuples whether the run is sharded or not (the chaos
suite's differential lever).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Mapping

from ..core.errors import WorkloadError
from ..sim.kernel import Arrival
from .elastic import Autoscaler, ElasticShardedEngine, ShardSupervisor
from .engine import ShardedEngine
from .frontier import MergedRecord

__all__ = ["ShardedSimulation"]


class ShardedSimulation:
    """Drive deterministic arrival schedules through a sharded engine.

    Args:
        build: Fresh-graph factory, forwarded to :class:`ShardedEngine`.
        shards / key / backend / ets_policy_factory / batch_size /
            block_mode / state_dir / checkpoint_every / observers /
            op_timeout / disorder_bound / feedback / config: Forwarded to
            :class:`ShardedEngine`.
        heartbeats: Optional ``{source: rate}`` map of periodic punctuation
            (scenario-B style), broadcast to every shard.
        wake_every: Exchange flushes per drive — the engine wakes up after
            this many delivered events (chunked, like the oracle drive).
        reshard_at: Optional ``{time: target_shards}`` schedule of live
            topology changes, executed at the first wake-up whose drive
            time reaches each instant; implies the elastic engine.
        supervisor / autoscaler: Optional
            :class:`~repro.shard.elastic.ShardSupervisor` /
            :class:`~repro.shard.elastic.Autoscaler`; either one (or
            ``elastic=True``) selects the
            :class:`~repro.shard.elastic.ElasticShardedEngine`.
    """

    def __init__(self, build: Callable[[], Any], *, shards: int,
                 key: str | Callable[[Any], Any],
                 backend: str = "serial",
                 ets_policy_factory=None, batch_size: int = 1,
                 block_mode: bool = False,
                 heartbeats: Mapping[str, float] | None = None,
                 wake_every: int = 8,
                 state_dir=None, checkpoint_every: int | None = None,
                 observers=None, op_timeout: float = 60.0,
                 disorder_bound: float = 0.0,
                 feedback=None,
                 reshard_at: Mapping[float, int] | None = None,
                 supervisor: ShardSupervisor | None = None,
                 autoscaler: Autoscaler | None = None,
                 elastic: bool = False,
                 config=None) -> None:
        shared = dict(
            shards=shards, key=key, backend=backend,
            ets_policy_factory=ets_policy_factory, batch_size=batch_size,
            block_mode=block_mode,
            state_dir=state_dir, checkpoint_every=checkpoint_every,
            observers=observers, op_timeout=op_timeout,
            disorder_bound=disorder_bound, feedback=feedback,
            config=config)
        if elastic or reshard_at or supervisor or autoscaler:
            self.engine: ShardedEngine = ElasticShardedEngine(
                build, supervisor=supervisor, autoscaler=autoscaler,
                **shared)
        else:
            self.engine = ShardedEngine(build, **shared)
        self._reshard_at = sorted((reshard_at or {}).items())
        self.heartbeats = dict(heartbeats or {})
        if wake_every <= 0:
            raise WorkloadError(f"wake_every must be positive, "
                                f"got {wake_every}")
        self.wake_every = wake_every
        self._arrivals: dict[str, Iterable[Arrival]] = {}
        self.arrivals_delivered = 0
        self.heartbeats_delivered = 0
        self.records: list[MergedRecord] = []

    def attach_arrivals(self, source: str, arrivals: Iterable[Arrival], *,
                        faults=None, skip: int = 0) -> "ShardedSimulation":
        """Bind a source's arrival schedule, optionally fault-wrapped.

        ``skip`` drops the schedule's first N arrivals — the resume path
        after recovery (the skipped prefix was already WAL-replayed by the
        shards it routed to).
        """
        if source in self._arrivals:
            raise WorkloadError(f"source {source!r} already has arrivals")
        stream = iter(arrivals)
        if faults is not None:
            stream = faults.wrap(source, stream)
        if skip:
            def skipped(inner=stream, n=skip):
                for index, arrival in enumerate(inner):
                    if index >= n:
                        yield arrival
            stream = skipped()
        self._arrivals[source] = stream
        return self

    def _events(self, until: float):
        """All drive events merged in time order.

        Yields ``(time, kind, source, arrival_or_None)`` with arrivals
        ordered before heartbeats at equal times (matching the kernel: a
        heartbeat stamped t covers everything up to and including t).
        """
        streams = []
        for order, (name, stream) in enumerate(sorted(self._arrivals.items())):
            streams.append((name, 0, order, iter(stream)))
        for order, (name, rate) in enumerate(sorted(self.heartbeats.items())):
            if rate <= 0:
                raise WorkloadError(
                    f"heartbeat rate for {name!r} must be positive")

            def ticks(r=rate, n=name):
                k = 1
                while True:
                    yield Arrival(time=k / r, payload=None, external_ts=None)
                    k += 1
            streams.append((name, 1, order, ticks()))

        heap = []
        for name, kind, order, stream in streams:
            first = next(stream, None)
            if first is not None and first.time <= until:
                heapq.heappush(heap, (first.time, kind, order, name,
                                      first, stream))
        while heap:
            time, kind, order, name, arrival, stream = heapq.heappop(heap)
            yield time, kind, name, arrival
            following = next(stream, None)
            if following is not None and following.time <= until:
                heapq.heappush(heap, (following.time, kind, order, name,
                                      following, stream))

    def run(self, until: float, *, eos: bool = True) -> list[MergedRecord]:
        """Deliver every event up to ``until``; returns the merged records.

        ``eos=True`` finishes with an end-of-stream punctuation on every
        source plus a final flush of the frontier merge, so the run drains
        completely (without it, NoEts legitimately strands gated tuples).
        The engine stays open for :meth:`summary`; call :meth:`close` when
        done.
        """
        engine = self.engine
        pending = 0
        last_time = 0.0
        for time, kind, name, arrival in self._events(until):
            last_time = time
            if kind == 0:
                engine.ingest(name, arrival.payload, time=time,
                              ts=arrival.external_ts)
                self.arrivals_delivered += 1
            else:
                engine.inject_punctuation(name, time,
                                          origin=f"heartbeat:{name}",
                                          periodic=True)
                self.heartbeats_delivered += 1
            pending += 1
            if pending >= self.wake_every:
                self.records.extend(engine.wakeup())
                pending = 0
                while self._reshard_at and time >= self._reshard_at[0][0]:
                    _, target = self._reshard_at.pop(0)
                    report = engine.reshard(target, reason="scheduled")
                    self.records.extend(report.released)
        if eos:
            final_ts = max(until, last_time) + 1.0
            for name in sorted(self._arrivals):
                engine.inject_punctuation(name, final_ts,
                                          origin=f"eos:{name}")
        if pending or eos:
            self.records.extend(engine.wakeup())
        if eos:
            self.records.extend(engine.merge.flush())
        return self.records

    def close(self, *, flush: bool = True) -> list[MergedRecord]:
        remaining = self.engine.close(flush=flush)
        self.records.extend(remaining)
        return remaining

    def summary(self) -> dict:
        out = self.engine.summary()
        out["arrivals_delivered"] = self.arrivals_delivered
        out["heartbeats_delivered"] = self.heartbeats_delivered
        return out
