"""The :class:`ShardedEngine` facade: P engines behind one ingest surface.

Data tuples are *shuffled* — routed by a stable hash of their partition key
to exactly one shard — while punctuation is *broadcast* to every shard:
each shard holds a full copy of the query graph, so its IWP operators gate
on all sources' progress, and a shard that never receives a key still
learns that time has passed.  (This is the paper's idle-waiting problem
reappearing one level up: without punctuation, an idle shard pins the
global frontier exactly as an idle input pins an IWP operator's τ — and
the same ETS machinery fixes both.)

Shard outputs flow into a :class:`~repro.shard.frontier.FrontierMerge`
gated on the min advertised frontier, so the merged stream is globally
timestamp-ordered while each shard runs at its own pace.

Correctness contract: the query must be **key-partitionable** — every
stateful binary operator (the window join) keyed on the partition key, so
that co-partitioned tuples meet on the same shard.  Unary operators
(select/map/union-of-partitioned-streams/reorder) compose freely.  The
``ShardedDifferentialOracle`` in ``tests/oracle.py`` is the executable
form of this contract: sharded output must equal single-engine output
after canonicalized ordering, for P ∈ {1, 2, 4}, across ETS modes, batch
sizes, and join layouts.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..core.config import EngineConfig
from ..core.errors import ReproError
from ..core.ets import EtsPolicy
from ..obs.bus import EventBus
from .backends import (
    BACKENDS,
    EngineShard,
    ShardResult,
    ShardSummary,
    make_backend,
)
from .frontier import FrontierMerge, FrontierTracker, MergedRecord
from .partition import HashPartitioner

__all__ = ["ShardedEngine", "ShardedRecoveryReport"]


@dataclass(slots=True)
class ShardedRecoveryReport:
    """Per-shard recovery reports plus the composed global figures.

    ``ingests_by_shard`` maps ``shard -> {source -> replayed ingest
    count}`` — exactly the per-shard skip counts a driver needs to re-feed
    the global schedule without duplicating routed tuples (routing is
    deterministic, so the crashed run's prefix routes identically on
    replay).
    """

    reports: list = field(default_factory=list)
    ingests_by_shard: dict[int, dict[str, int]] = field(default_factory=dict)
    frontiers: list[float] = field(default_factory=list)

    @property
    def ingests_by_source(self) -> dict[str, int]:
        """Global replayed-ingest counts, summed across shards."""
        totals: dict[str, int] = {}
        for counts in self.ingests_by_shard.values():
            for source, count in counts.items():
                totals[source] = totals.get(source, 0) + count
        return totals

    @property
    def total_ingests(self) -> int:
        return sum(self.ingests_by_source.values())

    @property
    def any_fallback(self) -> bool:
        return any(r.fallback for r in self.reports)


class ShardedEngine:
    """P key-partitioned engine shards behind one ingest/wakeup surface.

    Args:
        build: Zero-argument factory returning a fresh
            :class:`~repro.core.graph.QueryGraph`; called once per shard
            (each shard runs a private copy).
        shards: Shard count P ≥ 1.
        key: Partition key — a payload field name or a callable
            ``payload -> key``.  Keys must be stable-hashable (see
            :func:`repro.shard.partition.stable_hash`).
        backend: ``"serial"``, ``"thread"``, or ``"process"``.
        ets_policy_factory: Builds one ETS policy per shard (policies are
            stateful); None means NoEts everywhere.
        batch_size: Micro-batch width forwarded to every shard engine.
        block_mode: Columnar execution forwarded to every shard engine.
        state_dir: Root directory for per-shard recovery state
            (``state_dir/shard-00``, ``shard-01``, …); None disables
            durability.
        checkpoint_every: Per-shard checkpoint cadence in engine rounds.
        observers: :class:`~repro.obs.bus.Observer` instances receiving
            ``on_shard`` events (and nothing else — per-shard engine-level
            events stay inside their shard).
        op_timeout: Per-shard operation timeout (seconds) enforced by the
            thread and process backends.
        disorder_bound: Frontier slack for out-of-order sources.
        feedback: Builds one
            :class:`~repro.feedback.FeedbackController` per shard (a
            zero-argument factory — controllers hold hysteresis state and
            cannot be shared).  When set, each wake-up aggregates the
            shards' pressure views into a global maximum and broadcasts it
            back as a *clamp* with the next wake-up's commands — so every
            shard reacts to fleet-wide overload with a staleness of at
            most one wake-up.  None (the default) keeps the open-loop
            behavior byte-identical.
        feedback_factory: Deprecated alias of ``feedback``.
        retry_limit: Bounded re-poll attempts per operation for the
            process backend (see :class:`ProcessBackend`).
        retry_base / retry_cap / retry_jitter / retry_seed: Exponential
            re-poll backoff shape for the process backend — attempt ``i``
            waits ``min(retry_cap, op_timeout * retry_base**i)`` plus up
            to ``retry_jitter`` of seeded jitter; ``retry_cap=None``
            defaults to ``4 * op_timeout``.
        config: Optional :class:`~repro.core.config.EngineConfig` supplying
            defaults for the shared knobs; explicit keyword arguments win,
            and the factory-shaped knobs (``ets_policy``, ``feedback``)
            must be zero-argument factories here.
    """

    def __init__(self, build: Callable[[], Any], *, shards: int,
                 key: str | Callable[[Any], Any],
                 backend: str = "thread",
                 ets_policy_factory: Callable[[], EtsPolicy] | None = None,
                 batch_size: int = 1,
                 block_mode: bool = False,
                 state_dir: str | Path | None = None,
                 checkpoint_every: int | None = None,
                 observers=None,
                 op_timeout: float = 60.0,
                 disorder_bound: float = 0.0,
                 feedback: Callable[[], Any] | None = None,
                 feedback_factory: Callable[[], Any] | None = None,
                 retry_limit: int = 1,
                 retry_base: float = 2.0,
                 retry_cap: float | None = None,
                 retry_jitter: float = 0.25,
                 retry_seed: int = 0,
                 config: EngineConfig | None = None) -> None:
        if feedback_factory is not None:
            warnings.warn(
                "feedback_factory= is deprecated; pass the factory as "
                "feedback= (the canonical spelling shared with Simulation "
                "and EngineConfig)",
                DeprecationWarning, stacklevel=2)
            if feedback is None:
                feedback = feedback_factory
        if config is not None:
            knobs = config.resolve(
                dict(batch_size=batch_size, block_mode=block_mode,
                     checkpoint_every=checkpoint_every,
                     state_dir=state_dir),
                dict(batch_size=1, block_mode=False, checkpoint_every=None,
                     state_dir=None))
            batch_size = knobs["batch_size"]
            block_mode = knobs["block_mode"]
            checkpoint_every = knobs["checkpoint_every"]
            state_dir = knobs["state_dir"]
            if ets_policy_factory is None:
                ets_policy_factory = config.ets_policy_factory()
            if feedback is None:
                feedback = config.feedback_factory()
            observers = config.resolved_observers(observers) or None
        if backend not in BACKENDS:
            raise ReproError(f"unknown shard backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        self.shard_count = int(shards)
        self.backend_kind = backend
        self.partitioner = HashPartitioner(shards, key)
        self.tracker = FrontierTracker(shards)
        self.merge = FrontierMerge()
        self.bus = EventBus(observers) if observers else None
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._drive_now = 0.0
        self._pending_ingests: list[list] = [[] for _ in range(shards)]
        self._pending_puncts: list = []
        self.ingested = 0
        self.wakeups = 0
        self._closed = False
        self.feedback_enabled = feedback is not None
        self.global_pressure = 0.0
        self.clamps_broadcast = 0

        def shard_kwargs(index: int) -> dict:
            shard_state = (None if self.state_dir is None
                           else self.state_dir / f"shard-{index:02d}")
            return {
                "ets_policy_factory": ets_policy_factory,
                "batch_size": batch_size,
                "block_mode": block_mode,
                "state_dir": shard_state,
                "checkpoint_every": checkpoint_every,
                "disorder_bound": disorder_bound,
                "feedback_factory": feedback,
            }

        self._shard_kwargs = shard_kwargs
        self._build = build
        self._key = key
        self._backend_opts = dict(
            op_timeout=op_timeout, retry_limit=retry_limit,
            retry_base=retry_base, retry_cap=retry_cap,
            retry_jitter=retry_jitter, retry_seed=retry_seed)
        self.backend = make_backend(backend, shards, build=build,
                                    shard_kwargs=shard_kwargs,
                                    **self._backend_opts)
        if hasattr(self.backend, "on_retry"):
            self.backend.on_retry = self._note_retry

    def _note_retry(self, shard: int, op: str, attempt: int,
                    backoff: float) -> None:
        """Backend retry hook → ``on_shard(kind="retry")`` bus event."""
        if self.bus is not None:
            self.bus.shard(kind="retry", shard=shard, time=self._drive_now,
                           count=attempt, value=backoff,
                           detail=f"{op} re-polled with {backoff:g}s")

    # ------------------------------------------------------------------ #
    # Routing (the shuffle)

    def shard_for(self, payload: Any) -> int:
        """The shard a payload routes to (deterministic, process-stable)."""
        return self.partitioner.shard_for_payload(payload)

    def ingest(self, source: str, payload: Any, *, time: float,
               ts: float | None = None) -> int:
        """Route one tuple to its key's shard; applied at the next wakeup.

        Returns the destination shard index.
        """
        shard = self.shard_for(payload)
        self._pending_ingests[shard].append((source, payload, time, ts))
        if time > self._drive_now:
            self._drive_now = time
        self.ingested += 1
        return shard

    def inject_punctuation(self, source: str, ts: float, *,
                           origin: str = "", periodic: bool = False) -> None:
        """Broadcast a punctuation to every shard at the next wakeup."""
        self._pending_puncts.append((source, ts, origin, periodic))

    # ------------------------------------------------------------------ #
    # Driving

    def _apply(self, commands) -> list[ShardResult]:
        """Run one wake-up's commands on the backend.

        A single override point: :class:`~repro.shard.elastic.\
ElasticShardedEngine` swaps in the supervised per-shard path here
        (contain a failed shard, restart it, re-apply) without touching
        the rest of the wake-up protocol.
        """
        return self.backend.apply_all(commands)

    def inject_shard_fault(self, index: int, kind: str, *, at: float = 0.0,
                           duration: float = 0.0, repeat: int = 1,
                           phase: str = "pre",
                           persistent: bool = False) -> None:
        """Arm an injected ``crash``/``hang`` fault on one shard.

        This is the plumbing :class:`repro.faults.ShardCrash` /
        :class:`repro.faults.ShardHang` ride; see
        :meth:`EngineShard.arm_fault` for the semantics.  ``persistent``
        faults re-arm after a supervisor restart (the escalation path).
        """
        self.backend.inject_fault(index, {
            "kind": kind, "at": at, "duration": duration,
            "repeat": repeat, "phase": phase, "persistent": persistent})

    def wakeup(self) -> list[MergedRecord]:
        """Flush the exchange, run every shard to quiescence, merge.

        Returns the records released by the frontier gate this round, as
        ``(ts, shard, seq, sink, payload)`` tuples in global timestamp
        order.

        With ``feedback_factory`` set, the previous wake-up's aggregated
        pressure view rides along as a clamp (bounded staleness: one
        wake-up) and this wake-up's per-shard pressures are folded into
        the next view.
        """
        clamp = self.global_pressure if self.feedback_enabled else None
        commands = [(self._pending_ingests[i], self._pending_puncts,
                     self._drive_now, clamp)
                    for i in range(self.shard_count)]
        self._pending_ingests = [[] for _ in range(self.shard_count)]
        self._pending_puncts = []
        results: list[ShardResult] = self._apply(commands)
        self.wakeups += 1
        if clamp is not None and clamp > 0.0:
            self.clamps_broadcast += 1
        if self.feedback_enabled:
            previous = self.global_pressure
            self.global_pressure = max(
                (r.pressure for r in results), default=0.0)
            if self.bus is not None and self.global_pressure != previous:
                self.bus.shard(
                    kind="clamp", shard=-1, time=self._drive_now,
                    frontier=self.global_pressure, count=self.shard_count,
                    detail=f"pressure={self.global_pressure:.3f}")
        for result in results:
            self.tracker.advertise(result.shard, result.frontier)
            self.merge.offer(result.shard, result.outputs)
            if self.bus is not None:
                if result.ingested:
                    self.bus.shard(kind="ingest", shard=result.shard,
                                   time=self._drive_now,
                                   count=result.ingested)
                self.bus.shard(kind="wakeup", shard=result.shard,
                               time=self._drive_now,
                               frontier=result.frontier,
                               count=len(result.outputs))
        released = self.merge.release(self.tracker.global_frontier())
        if self.bus is not None:
            self.bus.shard(kind="frontier", shard=-1, time=self._drive_now,
                           frontier=self.tracker.global_frontier(),
                           count=len(released))
        return released

    def close(self, *, flush: bool = True) -> list[MergedRecord]:
        """Shut down shards; optionally flush records still gated.

        In-flight merge state is volatile by design (the durable
        exactly-once boundary is each shard's sink — see DESIGN.md §4g);
        an orderly close flushes it so a complete run loses nothing.
        """
        if self._closed:
            return []
        self._closed = True
        remaining = self.merge.flush() if flush else []
        self.backend.close()
        return remaining

    # ------------------------------------------------------------------ #
    # Durability composition

    def checkpoint(self) -> list:
        """Force a checkpoint on every shard (requires ``state_dir``)."""
        return self.backend.checkpoint_all()

    def recover(self) -> ShardedRecoveryReport:
        """Recover every shard to its durable prefix; compose the reports.

        Per-shard prefixes are mutually consistent because shards share no
        channels after the shuffle: each shard's WAL replay restores *its*
        partition of the stream exactly-once, and deterministic routing
        lets the driver re-feed the global suffix using the returned
        per-shard skip counts.
        """
        reports = self.backend.recover_all()
        composed = ShardedRecoveryReport(reports=list(reports))
        summaries = self.backend.summaries()
        for index, (report, summary) in enumerate(zip(reports, summaries)):
            composed.ingests_by_shard[index] = dict(report.ingests_by_source)
            composed.frontiers.append(summary.frontier)
            self.tracker.advertise(index, summary.frontier)
            if self.bus is not None:
                self.bus.shard(kind="recovery", shard=index,
                               time=self._drive_now,
                               frontier=summary.frontier,
                               count=sum(report.ingests_by_source.values()))
        return composed

    def crash_shard(self, index: int) -> Any:
        """Simulate a single-shard failure (in-process backends only).

        The shard's in-memory state is discarded and rebuilt from its
        checkpoint + WAL while every other shard keeps running — the
        targeted-failure half of the crash matrix.  Returns the shard's
        :class:`RecoveryReport`.
        """
        shards = getattr(self.backend, "shards", None)
        if shards is None:
            raise ReproError("crash_shard needs an in-process backend "
                             "(serial or thread)")
        old = shards[index]
        old.close()
        replacement = EngineShard(index, self._build,
                                  **self._shard_kwargs(index))
        shards[index] = replacement
        report = replacement.recover()
        self.tracker.advertise(index, replacement.frontier())
        if self.bus is not None:
            self.bus.shard(kind="recovery", shard=index,
                           time=self._drive_now,
                           frontier=replacement.frontier(),
                           count=sum(report.ingests_by_source.values()))
        return report

    # ------------------------------------------------------------------ #
    # Introspection

    def summaries(self) -> list[ShardSummary]:
        return self.backend.summaries()

    def summary(self) -> dict:
        """Global end-of-run figures plus one entry per shard."""
        per_shard = self.summaries()
        return {
            "shards": self.shard_count,
            "backend": self.backend_kind,
            "ingested": self.ingested,
            "wakeups": self.wakeups,
            "released": self.merge.released_count,
            "pending": self.merge.pending,
            "frontier": self.tracker.global_frontier(),
            "frontier_spread": self.tracker.spread(),
            "pressure": self.global_pressure,
            "clamps_broadcast": self.clamps_broadcast,
            "retries": getattr(self.backend, "retries", 0),
            "per_shard": [
                {"shard": s.shard, "ingested": s.ingested,
                 "delivered": s.delivered, "frontier": s.frontier}
                for s in per_shard
            ],
        }
