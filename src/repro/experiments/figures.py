"""Regeneration of every figure and table in the paper's evaluation.

Paper Section 6 reports three artefacts on the Fig.-4 union query
(50 vs 0.05 tuples/s Poisson streams through 95 %-selectivity filters):

* **Figure 7 (a/b)** — average output latency (log scale): line A (no ETS)
  far above line B (periodic ETS, improving with injection rate), with
  line C (on-demand ETS) orders of magnitude below and within ~0.1 ms of
  line D (latent timestamps).
* **Idle-waiting table** (in-text) — fraction of time the union idle-waits:
  A ≈ 99 %, B@100 Hz ≈ 15 %, C < 0.1 %.
* **Figure 8 (a/b)** — peak total queue size: A in the thousands of tuples,
  C two-plus orders lower, B U-shaped in the injection rate.

Each ``figure*`` function returns the plotted series as data; ``format_*``
helpers render them as the tables/ASCII plots printed by the benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.report import format_series, format_table
from ..sim.cost import CostModel
from ..workloads.scenarios import ScenarioConfig
from .runner import ExperimentResult, run_union_experiment

__all__ = [
    "DEFAULT_HEARTBEAT_RATES",
    "SweepResult",
    "figure7",
    "figure8",
    "format_figure7",
    "format_figure8",
    "format_idle_table",
    "idle_waiting_table",
    "run_sweep",
]

#: Periodic-ETS injection rates swept for line B (per second).  The top rate
#: is where punctuation service overhead visibly bends the curves back up.
DEFAULT_HEARTBEAT_RATES: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0, 1000.0,
                                              4000.0)


@dataclass(slots=True)
class SweepResult:
    """All scenario runs behind one figure.

    Attributes:
        baselines: Scenario label → result, for A, C, D.
        periodic: Injection rate → result, for the B sweep.
    """

    baselines: dict[str, ExperimentResult] = field(default_factory=dict)
    periodic: dict[float, ExperimentResult] = field(default_factory=dict)

    def latency_series(self) -> list[tuple[float, float]]:
        return [(rate, res.mean_latency)
                for rate, res in sorted(self.periodic.items())]

    def peak_series(self) -> list[tuple[float, float]]:
        return [(rate, float(res.peak_queue))
                for rate, res in sorted(self.periodic.items())]


def _config(scenario: str, *, duration: float, seed: int,
            heartbeat_rate: float | None = None,
            rate_fast: float = 50.0, rate_slow: float = 0.05,
            cost_model: CostModel | None = None) -> ScenarioConfig:
    return ScenarioConfig(scenario=scenario, duration=duration, seed=seed,
                          heartbeat_rate=heartbeat_rate,
                          rate_fast=rate_fast, rate_slow=rate_slow,
                          cost_model=cost_model)


def run_sweep(*, duration: float = 120.0, sweep_duration: float = 60.0,
              seed: int = 42,
              heartbeat_rates: tuple[float, ...] = DEFAULT_HEARTBEAT_RATES,
              rate_fast: float = 50.0, rate_slow: float = 0.05,
              cost_model: CostModel | None = None) -> SweepResult:
    """Run scenarios A, C, D plus the B sweep once; both figures share it.

    ``sweep_duration`` bounds the expensive high-rate B runs separately from
    the baselines (idle-waiting statistics want longer windows; the B curve
    stabilizes quickly).
    """
    result = SweepResult()
    for scenario in ("A", "C", "D"):
        result.baselines[scenario] = run_union_experiment(
            _config(scenario, duration=duration, seed=seed,
                    rate_fast=rate_fast, rate_slow=rate_slow,
                    cost_model=cost_model))
    for rate in heartbeat_rates:
        result.periodic[rate] = run_union_experiment(
            _config("B", duration=sweep_duration, seed=seed,
                    heartbeat_rate=rate, rate_fast=rate_fast,
                    rate_slow=rate_slow, cost_model=cost_model))
    return result


def figure7(sweep: SweepResult | None = None, **sweep_kwargs) -> SweepResult:
    """Figure 7: average output latency for A, B(rate), C, D."""
    return sweep if sweep is not None else run_sweep(**sweep_kwargs)


def figure8(sweep: SweepResult | None = None, **sweep_kwargs) -> SweepResult:
    """Figure 8: peak total queue size for A, B(rate), C, D."""
    return sweep if sweep is not None else run_sweep(**sweep_kwargs)


def idle_waiting_table(*, duration: float = 120.0, seed: int = 42,
                       heartbeat_rate: float = 100.0,
                       rate_fast: float = 50.0, rate_slow: float = 0.05,
                       cost_model: CostModel | None = None,
                       ) -> dict[str, ExperimentResult]:
    """The in-text idle-waiting comparison: A, B@rate, C."""
    kwargs = dict(duration=duration, seed=seed, rate_fast=rate_fast,
                  rate_slow=rate_slow, cost_model=cost_model)
    results = {
        "A": run_union_experiment(_config("A", **kwargs)),
        "B": run_union_experiment(
            _config("B", heartbeat_rate=heartbeat_rate, **kwargs)),
        "C": run_union_experiment(_config("C", **kwargs)),
    }
    return results


# --------------------------------------------------------------------- #
# Rendering

def format_figure7(sweep: SweepResult) -> str:
    rows = []
    for label in ("A", "C", "D"):
        res = sweep.baselines[label]
        rows.append([f"line {label}", "-", res.mean_latency * 1e3,
                     res.p99_latency * 1e3, res.delivered])
    for rate, res in sorted(sweep.periodic.items()):
        rows.append(["line B", rate, res.mean_latency * 1e3,
                     res.p99_latency * 1e3, res.delivered])
    table = format_table(
        ["series", "punct rate (1/s)", "mean latency (ms)",
         "p99 latency (ms)", "delivered"],
        rows, title="Figure 7 — average output latency (paper plots log scale)")
    plot = format_series(
        [(rate, res.mean_latency * 1e3)
         for rate, res in sorted(sweep.periodic.items())],
        log_y=True,
        title="line B: mean latency (ms, log10) vs punctuation rate")
    gap = (sweep.baselines["C"].mean_latency
           - sweep.baselines["D"].mean_latency) * 1e3
    zoom = (f"Figure 7(b) zoom — C minus D = {gap:.4f} ms "
            "(paper: about 0.1 ms)")
    return "\n\n".join([table, plot, zoom])


def format_figure8(sweep: SweepResult) -> str:
    rows = []
    for label in ("A", "C", "D"):
        res = sweep.baselines[label]
        rows.append([f"line {label}", "-", res.peak_queue,
                     res.punctuation_enqueued])
    for rate, res in sorted(sweep.periodic.items()):
        rows.append(["line B", rate, res.peak_queue,
                     res.punctuation_enqueued])
    table = format_table(
        ["series", "punct rate (1/s)", "peak queue (tuples)",
         "punctuation enqueued"],
        rows, title="Figure 8 — peak total queue size")
    plot = format_series(
        [(rate, float(res.peak_queue))
         for rate, res in sorted(sweep.periodic.items())],
        log_y=True,
        title="line B: peak queue (tuples, log10) vs punctuation rate")
    return "\n\n".join([table, plot])


def format_idle_table(results: dict[str, ExperimentResult]) -> str:
    rows = [[label, res.heartbeat_rate or "-", res.idle_fraction * 100]
            for label, res in results.items()]
    return format_table(
        ["scenario", "hb rate (1/s)", "idle-waiting (% of time)"], rows,
        title=("Idle-waiting share of the union operator "
               "(paper: A=99 %, B@100=15 %, C<0.1 %)"))
