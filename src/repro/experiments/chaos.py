"""Chaos experiment: the paper's union scenario under an injected fault plan.

This is the executable form of the degradation story: take the Fig.-4
skewed-rates query, kill the fast stream for a while (plus optional skew
spikes and tuple loss), and measure how long the sink stays silent under

* on-demand ETS alone (the paper's scenario C — which only answers when
  the engine happens to backtrack), versus
* on-demand ETS wrapped in the fallback-heartbeat ladder (stall detector +
  fallback trains + quarantine + invariant monitors).

Exposed to users through ``python -m repro chaos`` and reused by the
``bench_fault_recovery`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import WorkloadError
from ..core.ets import NoEts, OnDemandEts
from ..faults.degrade import (FallbackHeartbeat, QuarantinePolicy,
                              StallDetector)
from ..faults.monitors import InvariantMonitor
from ..faults.plan import ClockSkewSpike, DropTuples, FaultPlan, SourceOutage
from ..metrics.recovery import RecoveryTracker
from ..sim.kernel import Simulation
from ..workloads.scenarios import ScenarioConfig, build_union_scenario

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos_experiment"]


@dataclass(slots=True)
class ChaosConfig:
    """Parameters of one chaos run over the paper's union query.

    The outage targets the *fast* stream: with the sparse stream as the
    union's other input, silencing the fast one stalls deliveries outright,
    which makes time-to-liveness an unambiguous measurement.
    """

    duration: float = 120.0
    rate_fast: float = 50.0
    rate_slow: float = 0.5
    seed: int = 42
    external: bool = False
    external_skew: float = 0.1
    ets_delta: float = 0.1
    outage_start: float = 30.0
    outage_duration: float = 30.0
    outage_mode: str = "drop"
    skew_spike: float = 0.0
    skew_spike_start: float = 70.0
    skew_spike_duration: float = 10.0
    drop_probability: float = 0.0
    stall_timeout: float = 2.0
    heartbeat_period: float = 0.5
    quarantine_mode: str = "clamp"
    degrade: bool = True
    #: The healthy-path ETS policy under the ladder: "on-demand" (scenario
    #: C — a wake-up during the outage already recovers via backtracking) or
    #: "none" (scenarios A/B — only the ladder restores liveness).
    base_ets: str = "on-demand"
    max_total_buffered: int = 1_000_000
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.base_ets not in ("on-demand", "none"):
            raise WorkloadError(
                f"base_ets must be 'on-demand' or 'none', got "
                f"{self.base_ets!r}")


@dataclass(slots=True)
class ChaosReport:
    """What one chaos run did and how fast it recovered."""

    config: ChaosConfig
    summary: dict = field(default_factory=dict)
    fault_stats: dict = field(default_factory=dict)
    time_to_liveness: float | None = None
    max_sink_gap: float = 0.0
    delivered: int = 0
    monitor_violations: int = 0

    def as_dict(self) -> dict[str, object]:
        """Every figure under its canonical ``snake_case`` name.

        The one serialized shape shared with ``EngineStats.as_dict()`` and
        ``RecoveryTracker.as_dict()``: the simulation summary and the
        fault-plan stats are folded in flat, and the report's own fields
        override on collision (they are the authoritative measurements).
        """
        out: dict[str, object] = dict(self.summary)
        out.update(self.fault_stats)
        out.update(
            delivered=self.delivered,
            time_to_liveness=self.time_to_liveness,
            max_sink_gap=self.max_sink_gap,
            monitor_violations=self.monitor_violations,
        )
        return out

    def rows(self) -> list[tuple[str, object]]:
        s = self.summary
        ttl = ("never" if self.time_to_liveness is None
               else f"{self.time_to_liveness:.3f}s")
        return [
            ("delivered tuples", self.delivered),
            ("time-to-liveness after outage", ttl),
            ("max sink silence (s)", round(self.max_sink_gap, 3)),
            ("degradations / resyncs",
             f"{s.get('degradations', 0)} / {s.get('resyncs', 0)}"),
            ("fallback heartbeats", s.get("fallback_heartbeats", 0)),
            ("quarantined (dropped/clamped)",
             f"{s.get('quarantine_dropped', 0)} / "
             f"{s.get('quarantine_clamped', 0)}"),
            ("injected losses", self.fault_stats.get("outage_dropped", 0)
             + self.fault_stats.get("dropped", 0)),
            ("invariant violations", self.monitor_violations),
        ]


def make_fault_plan(config: ChaosConfig) -> FaultPlan:
    """The fault plan a :class:`ChaosConfig` describes (fast-stream faults)."""
    specs: list = [
        SourceOutage("fast", start=config.outage_start,
                     duration=config.outage_duration,
                     mode=config.outage_mode),
    ]
    if config.skew_spike > 0:
        specs.append(ClockSkewSpike(
            "fast", start=config.skew_spike_start,
            duration=config.skew_spike_duration, skew=config.skew_spike))
    if config.drop_probability > 0:
        specs.append(DropTuples("fast", config.drop_probability))
    return FaultPlan(specs, seed=config.seed)


def run_chaos_experiment(config: ChaosConfig) -> ChaosReport:
    """Build, fault, degrade, run, and measure one chaos scenario."""
    scenario = ScenarioConfig(
        scenario="C", duration=config.duration, seed=config.seed,
        rate_fast=config.rate_fast, rate_slow=config.rate_slow,
        external=config.external, external_skew=config.external_skew,
        ets_delta=config.ets_delta, batch_size=config.batch_size)

    # Build the graph through the scenario builder, then rebuild the
    # simulation around it with the degradation ladder and faulted arrivals
    # (the builder's own simulation already consumed the pristine streams).
    handles = build_union_scenario(scenario)
    plan = make_fault_plan(config)

    graph = handles.graph
    fast, slow = handles.fast_source, handles.slow_source
    policy = (OnDemandEts(external_delta=config.ets_delta)
              if config.base_ets == "on-demand" else NoEts())
    detector = None
    quarantine = None
    monitor = InvariantMonitor(max_total_buffered=config.max_total_buffered,
                               mode="degrade")
    if config.degrade:
        policy = FallbackHeartbeat(policy,
                                   heartbeat_period=config.heartbeat_period,
                                   external_delta=config.ets_delta)
        detector = StallDetector(config.stall_timeout)
        quarantine = QuarantinePolicy(config.quarantine_mode)

    sim = Simulation(graph, ets_policy=policy, batch_size=config.batch_size,
                     stall_detector=detector, quarantine=quarantine,
                     monitor=monitor)
    # Fresh arrival schedules (same seeds as the builder used), with the
    # fault plan wrapped around the fast stream's.
    _reattach_streams(sim, scenario, fast, slow, plan)

    tracker = RecoveryTracker().watch(handles.sink)
    sim.run(until=config.duration)

    return ChaosReport(
        config=config,
        summary=sim.summary(),
        fault_stats=plan.stats.as_dict(),
        time_to_liveness=tracker.time_to_liveness(after=config.outage_start),
        max_sink_gap=tracker.max_sink_gap if tracker.times
        else config.duration,
        delivered=handles.sink.delivered,
        monitor_violations=monitor.violations,
    )


def _reattach_streams(sim: Simulation, scenario: ScenarioConfig,
                      fast, slow, plan: FaultPlan) -> None:
    import random

    from ..workloads.arrival import (poisson_arrivals,
                                     with_external_timestamps)
    from ..workloads.datagen import uniform_value_payloads

    rng_fast = random.Random(scenario.seed)
    rng_slow = random.Random(scenario.seed + 1)
    fast_arrivals = poisson_arrivals(
        scenario.rate_fast, rng_fast,
        payloads=uniform_value_payloads(random.Random(scenario.seed + 2)))
    slow_arrivals = poisson_arrivals(
        scenario.rate_slow, rng_slow,
        payloads=uniform_value_payloads(random.Random(scenario.seed + 3)))
    if scenario.external:
        fast_arrivals = with_external_timestamps(
            fast_arrivals, random.Random(scenario.seed + 4),
            max_skew=scenario.external_skew)
        slow_arrivals = with_external_timestamps(
            slow_arrivals, random.Random(scenario.seed + 5),
            max_skew=scenario.external_skew)
    sim.attach_arrivals(fast, fast_arrivals, faults=plan)
    sim.attach_arrivals(slow, slow_arrivals, faults=plan)
