"""Crash-recovery experiment: kill the process mid-run, recover, compare.

The executable form of the durability story (see DESIGN.md section 4f):
run the paper's union scenario with a :class:`~repro.recovery.RecoveryManager`
attached, crash-stop it with a :class:`~repro.faults.plan.ProcessCrash` at a
chosen instant, rebuild the graph from scratch, recover from the checkpoint
directory, resume the arrival schedules past the WAL, and verify the
combined sink output is **byte-identical** to a run that never crashed —
no tuple lost, none delivered twice.

Exposed to users through ``python -m repro recover`` and
``python -m repro chaos --crash-at``, and reused by ``bench_recovery``.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass, field

from ..core.errors import WorkloadError
from ..core.ets import NoEts, OnDemandEts
from ..faults.plan import FaultPlan, ProcessCrash, SimulatedCrash
from ..metrics.recovery import CheckpointTracker
from ..recovery import RecoveryManager, RecoveryReport
from ..sim.kernel import Simulation
from ..workloads.scenarios import ScenarioConfig, build_union_scenario

__all__ = ["CrashConfig", "CrashReport", "run_crash_experiment"]

#: Canonical sink record, comparable across runs: (ts, payload).
_SinkRecord = tuple[float, object]


@dataclass(slots=True)
class CrashConfig:
    """Parameters of one crash-stop + recovery cycle over the union query."""

    duration: float = 60.0
    rate_fast: float = 50.0
    rate_slow: float = 0.5
    seed: int = 42
    crash_at: float = 30.0
    checkpoint_every: int = 50
    #: Checkpoint/WAL directory; None uses (and removes) a temp directory.
    state_dir: str | None = None
    #: Corrupt the newest checkpoint before recovering — demonstrates the
    #: loud fallback to the previous one.
    corrupt_latest: bool = False
    base_ets: str = "on-demand"
    batch_size: int = 1
    fsync: bool = True
    keep: int = 4

    def __post_init__(self) -> None:
        if self.base_ets not in ("on-demand", "none"):
            raise WorkloadError(
                f"base_ets must be 'on-demand' or 'none', got "
                f"{self.base_ets!r}")
        if not 0.0 < self.crash_at < self.duration:
            raise WorkloadError(
                f"crash_at must fall inside (0, duration), got "
                f"{self.crash_at} with duration {self.duration}")
        if self.checkpoint_every < 1:
            raise WorkloadError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}")


@dataclass(slots=True)
class CrashReport:
    """What one crash-recovery cycle did, and whether it was exactly-once."""

    config: CrashConfig
    identical: bool = False
    reference_delivered: int = 0
    pre_crash_delivered: int = 0
    post_recovery_delivered: int = 0
    recovery: dict = field(default_factory=dict)
    tracker: dict = field(default_factory=dict)
    checkpoints_written: int = 0

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "identical": self.identical,
            "reference_delivered": self.reference_delivered,
            "pre_crash_delivered": self.pre_crash_delivered,
            "post_recovery_delivered": self.post_recovery_delivered,
            "checkpoints_written": self.checkpoints_written,
        }
        out.update({f"recovery_{k}": v for k, v in self.recovery.items()
                    if k not in ("skipped", "suppressed",
                                 "ingests_by_source")})
        out.update({f"tracker_{k}": v for k, v in self.tracker.items()})
        return out

    def rows(self) -> list[tuple[str, object]]:
        r = self.recovery
        return [
            ("byte-identical to uncrashed run",
             "yes" if self.identical else "NO"),
            ("delivered before crash", self.pre_crash_delivered),
            ("delivered after recovery", self.post_recovery_delivered),
            ("reference (uncrashed) total", self.reference_delivered),
            ("checkpoints written", self.checkpoints_written),
            ("checkpoint restored", r.get("checkpoint_number", 0)),
            ("corrupted checkpoints skipped", len(r.get("skipped", []))),
            ("WAL records / replayed",
             f"{r.get('wal_records', 0)} / {r.get('replayed', 0)}"),
            ("outputs suppressed (already emitted)",
             r.get("total_suppressed", 0)),
            ("recovery time (ms)",
             round(1e3 * r.get("duration", 0.0), 3)),
        ]


def _scenario(config: CrashConfig) -> ScenarioConfig:
    return ScenarioConfig(
        scenario="C", duration=config.duration, seed=config.seed,
        rate_fast=config.rate_fast, rate_slow=config.rate_slow,
        batch_size=config.batch_size)


def _streams(scenario: ScenarioConfig):
    """Fresh deterministic arrival iterators (same seeds every call)."""
    from ..workloads.arrival import poisson_arrivals
    from ..workloads.datagen import uniform_value_payloads

    return {
        "fast": poisson_arrivals(
            scenario.rate_fast, random.Random(scenario.seed),
            payloads=uniform_value_payloads(random.Random(scenario.seed + 2))),
        "slow": poisson_arrivals(
            scenario.rate_slow, random.Random(scenario.seed + 1),
            payloads=uniform_value_payloads(random.Random(scenario.seed + 3))),
    }


def _capture(sink) -> list[_SinkRecord]:
    trace: list[_SinkRecord] = []
    previous = sink.on_output

    def record(tup, latency) -> None:
        trace.append((tup.ts, tup.payload))
        if previous is not None:
            previous(tup, latency)

    sink.on_output = record
    return trace


def _policy(config: CrashConfig):
    return OnDemandEts() if config.base_ets == "on-demand" else NoEts()


def _build(config: CrashConfig, *, recovery: RecoveryManager | None):
    handles = build_union_scenario(_scenario(config))
    trace = _capture(handles.sink)
    sim = Simulation(
        handles.graph, ets_policy=_policy(config),
        batch_size=config.batch_size,
        checkpoint_every=config.checkpoint_every if recovery else None,
        recovery=recovery)
    return handles, sim, trace


def _corrupt_latest_checkpoint(manager: RecoveryManager) -> None:
    numbers = manager.store.numbers()
    if not numbers:
        return
    path = manager.store.path_for(numbers[-1])
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))


def run_crash_experiment(config: CrashConfig) -> CrashReport:
    """One full cycle: reference run, crashed run, recovery, comparison."""
    scenario = _scenario(config)

    # Reference: the same workload with nothing attached and no crash.
    handles, sim, reference = _build(config, recovery=None)
    for name, arrivals in _streams(scenario).items():
        sim.attach_arrivals(handles.graph[name], arrivals)
    sim.run(until=config.duration)

    state_dir = config.state_dir or tempfile.mkdtemp(prefix="repro-crash-")
    try:
        # Crashed run: durably logged, checkpointed, killed at crash_at.
        tracker = CheckpointTracker()
        manager = RecoveryManager(state_dir, keep=config.keep,
                                  fsync=config.fsync, tracker=tracker)
        handles, sim, pre = _build(config, recovery=manager)
        plan = FaultPlan([ProcessCrash("fast", at=config.crash_at)],
                         seed=config.seed)
        for name, arrivals in _streams(scenario).items():
            sim.attach_arrivals(handles.graph[name], arrivals, faults=plan)
        try:
            sim.run(until=config.duration)
            raise WorkloadError(
                f"crash_at={config.crash_at} fired no crash (schedule "
                "ended first?)")
        except SimulatedCrash:
            pass
        checkpoints_written = tracker.checkpoints
        manager.close()

        if config.corrupt_latest:
            _corrupt_latest_checkpoint(manager)

        # Recovery: fresh process image, restore + replay, resume feeds.
        manager = RecoveryManager(state_dir, keep=config.keep,
                                  fsync=config.fsync, tracker=tracker)
        handles, sim, post = _build(config, recovery=manager)
        report: RecoveryReport = manager.recover()
        for name, arrivals in _streams(scenario).items():
            sim.attach_arrivals(handles.graph[name], arrivals,
                                skip=report.ingests_by_source.get(name, 0))
        sim.run(until=config.duration)
        manager.close()
    finally:
        if config.state_dir is None:
            shutil.rmtree(state_dir, ignore_errors=True)

    combined = pre + post
    return CrashReport(
        config=config,
        identical=(combined == reference),
        reference_delivered=len(reference),
        pre_crash_delivered=len(pre),
        post_recovery_delivered=len(post),
        recovery=report.as_dict(),
        tracker=tracker.as_dict(),
        checkpoints_written=checkpoints_written,
    )
