"""Scenario runner: execute one configured experiment, collect every metric.

This is the shared machinery beneath the figure generators and the pytest
benchmarks: build the scenario, run it for the configured duration, and
package the measurements the paper reports (latency, peak queue size,
idle-waiting fraction) together with engine statistics useful for debugging
and the ablations (punctuation counts, CPU utilization, ETS activity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.scenarios import (
    ScenarioConfig,
    ScenarioHandles,
    build_join_scenario,
    build_union_scenario,
)

__all__ = ["ExperimentResult", "run_union_experiment", "run_join_experiment",
           "result_from_handles"]


@dataclass(slots=True)
class ExperimentResult:
    """Everything measured by one scenario run (times in stream seconds)."""

    scenario: str
    heartbeat_rate: float | None
    duration: float
    delivered: int
    mean_latency: float
    max_latency: float
    p50_latency: float
    p99_latency: float
    peak_queue: int
    idle_fraction: float
    cpu_utilization: float
    punctuation_enqueued: int
    ets_injected: int
    engine_steps: int
    data_steps: int
    punct_steps: int

    def as_row(self) -> list:
        """Row for the report tables printed by the benches."""
        return [
            self.scenario,
            self.heartbeat_rate if self.heartbeat_rate is not None else "-",
            self.mean_latency * 1e3,   # ms, as the paper plots
            self.peak_queue,
            self.idle_fraction * 100,  # percent, as the paper quotes
            self.delivered,
        ]

    @staticmethod
    def row_headers() -> list[str]:
        return ["scenario", "hb rate (1/s)", "mean latency (ms)",
                "peak queue (tuples)", "idle-waiting (%)", "delivered"]


def result_from_handles(handles: ScenarioHandles) -> ExperimentResult:
    """Extract an :class:`ExperimentResult` from a finished scenario."""
    config = handles.config
    sim = handles.sim
    stats = sim.engine.stats
    recorder = handles.recorder
    return ExperimentResult(
        scenario=config.scenario,
        heartbeat_rate=(config.heartbeat_rate
                        if config.scenario == "B" else None),
        duration=config.duration,
        delivered=handles.sink.delivered,
        mean_latency=recorder.mean,
        max_latency=recorder.max_latency,
        p50_latency=recorder.percentile(0.5),
        p99_latency=recorder.percentile(0.99),
        peak_queue=sim.peak_queue_size,
        idle_fraction=sim.idle_fraction(handles.iwp.name),
        cpu_utilization=sim.cpu_utilization,
        punctuation_enqueued=sum(buf.punctuation_count
                                 for buf in handles.graph.buffers),
        ets_injected=stats.ets_injected,
        engine_steps=stats.steps,
        data_steps=stats.data_steps,
        punct_steps=stats.punct_steps,
    )


def run_union_experiment(config: ScenarioConfig) -> ExperimentResult:
    """Build, run, and measure the paper's Fig.-4 union query."""
    return result_from_handles(build_union_scenario(config).run())


def run_join_experiment(config: ScenarioConfig, *,
                        window_seconds: float = 60.0) -> ExperimentResult:
    """Build, run, and measure the window-join variant (bench X2)."""
    handles = build_join_scenario(config, window_seconds=window_seconds)
    return result_from_handles(handles.run())
