"""Experiment harness: scenario runner, figures, and chaos experiments."""

from .chaos import ChaosConfig, ChaosReport, run_chaos_experiment
from .crash import CrashConfig, CrashReport, run_crash_experiment
from .overload import OverloadConfig, OverloadReport, run_overload_experiment
from .figures import (
    DEFAULT_HEARTBEAT_RATES,
    SweepResult,
    figure7,
    figure8,
    format_figure7,
    format_figure8,
    format_idle_table,
    idle_waiting_table,
    run_sweep,
)
from .validation import (
    ClaimResult,
    format_claims,
    run_validation,
    validate_paper_claims,
)
from .runner import (
    ExperimentResult,
    result_from_handles,
    run_join_experiment,
    run_union_experiment,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "ClaimResult",
    "CrashConfig",
    "CrashReport",
    "DEFAULT_HEARTBEAT_RATES",
    "ExperimentResult",
    "OverloadConfig",
    "OverloadReport",
    "SweepResult",
    "figure7",
    "figure8",
    "format_figure7",
    "format_figure8",
    "format_idle_table",
    "idle_waiting_table",
    "result_from_handles",
    "run_chaos_experiment",
    "run_crash_experiment",
    "run_join_experiment",
    "run_overload_experiment",
    "run_sweep",
    "run_union_experiment",
    "run_validation",
    "validate_paper_claims",
    "format_claims",
]
