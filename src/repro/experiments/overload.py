"""Overload experiment: the union scenario under a load spike + slow sink.

The chaos experiment measures how the degradation ladder restores
*liveness* when a source dies; this one measures how the feedback loop
(:mod:`repro.feedback`) bounds *latency and memory* when nothing dies but
everything is too fast: a :class:`~repro.faults.plan.LoadSpike` multiplies
the fast stream's arrival rate while a :class:`~repro.faults.plan.SlowSink`
inflates the sink's per-tuple cost — the classic overload squeeze.

Run it open-loop (``feedback=False``: no controller, no throttle — queues
and latency grow with the spike) and closed-loop (``feedback=True``: the
controller's pressure waves drive an AIMD token-bucket throttle at the fast
source, so depth and p99 latency stay bounded at the price of admission
drops).  ``python -m repro chaos --overload`` prints the comparison;
``benchmarks/bench_backpressure.py`` asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import WorkloadError
from ..core.ets import NoEts, OnDemandEts
from ..faults.monitors import InvariantMonitor
from ..faults.plan import FaultPlan, LoadSpike, SlowSink
from ..feedback import FeedbackController, TokenBucketThrottle
from ..metrics.latency import LatencyRecorder
from ..sim.kernel import Simulation
from ..workloads.scenarios import ScenarioConfig, build_union_scenario

__all__ = ["OverloadConfig", "OverloadReport", "run_overload_experiment"]


@dataclass(slots=True)
class OverloadConfig:
    """Parameters of one overload run over the paper's union query.

    The spike targets the *fast* stream (the slow one is load-wise
    irrelevant), and the slow-sink window matches the spike window, so the
    squeeze is concentrated and the pre/post segments give the controller
    room to activate and unwind within the run.
    """

    duration: float = 60.0
    rate_fast: float = 50.0
    rate_slow: float = 0.5
    seed: int = 42
    ets_delta: float = 0.1
    base_ets: str = "on-demand"
    batch_size: int = 1
    spike_start: float = 10.0
    spike_duration: float = 20.0
    spike_factor: float = 6.0
    sink_factor: float = 1.0
    #: Extra simulated seconds per sink step inside the spike window.  The
    #: default keeps the sink slower than the spiked arrival rate, which is
    #: what makes the overload real rather than a transient.
    sink_extra: float = 0.004
    #: Closed loop (controller + throttle) when True; open loop otherwise.
    feedback: bool = True
    high_watermark: int = 48
    low_watermark: int | None = None
    overload_depth: int | None = None
    relief_beats: int = 8
    #: Nominal admission rate for the fast source's AIMD token bucket;
    #: None defaults to ``rate_fast * spike_factor`` — permissive enough
    #: to admit the whole spike, so any bounding observed is the AIMD
    #: *feedback* reducing the rate, not the bucket's static cap.
    throttle_rate: float | None = None
    max_total_buffered: int = 1_000_000

    def __post_init__(self) -> None:
        if self.base_ets not in ("on-demand", "none"):
            raise WorkloadError(
                f"base_ets must be 'on-demand' or 'none', got "
                f"{self.base_ets!r}")
        if self.spike_factor < 1.0:
            raise WorkloadError(
                f"spike_factor must be >= 1, got {self.spike_factor}")


@dataclass(slots=True)
class OverloadReport:
    """What one overload run delivered, queued, and throttled."""

    config: OverloadConfig
    summary: dict = field(default_factory=dict)
    fault_stats: dict = field(default_factory=dict)
    latency: dict = field(default_factory=dict)
    delivered: int = 0
    throttled: int = 0
    peak_queue: int = 0
    monitor_violations: int = 0

    def as_dict(self) -> dict[str, object]:
        """Every figure flat, ``snake_case``, latency keys prefixed."""
        out: dict[str, object] = dict(self.summary)
        out.update(self.fault_stats)
        out.update({f"latency_{k}": v for k, v in self.latency.items()})
        out.update(
            delivered=self.delivered,
            throttled=self.throttled,
            peak_queue=self.peak_queue,
            monitor_violations=self.monitor_violations,
        )
        return out

    def rows(self) -> list[tuple[str, object]]:
        s = self.summary
        loop = "closed (feedback)" if self.config.feedback else "open"
        return [
            ("control loop", loop),
            ("delivered tuples", self.delivered),
            ("throttled at admission", self.throttled),
            ("peak queue depth", self.peak_queue),
            ("p99 latency (s)", round(self.latency.get("p99", 0.0), 4)),
            ("max latency (s)", round(self.latency.get("max", 0.0), 4)),
            ("feedback episodes / waves / reliefs",
             f"{s.get('feedback_episodes', 0)} / "
             f"{s.get('feedback_waves', 0)} / "
             f"{s.get('feedback_reliefs', 0)}"),
            ("spiked / slowed tuples",
             f"{self.fault_stats.get('spiked', 0)} / "
             f"{self.fault_stats.get('slowed', 0)}"),
            ("invariant violations", self.monitor_violations),
        ]


def make_overload_plan(config: OverloadConfig) -> FaultPlan:
    """The fault plan an :class:`OverloadConfig` describes."""
    specs: list = [
        LoadSpike("fast", start=config.spike_start,
                  duration=config.spike_duration,
                  factor=config.spike_factor),
    ]
    if config.sink_factor > 1.0 or config.sink_extra > 0.0:
        specs.append(SlowSink(
            "sink", start=config.spike_start,
            duration=config.spike_duration,
            factor=max(1.0, config.sink_factor), extra=config.sink_extra))
    return FaultPlan(specs, seed=config.seed)


def run_overload_experiment(config: OverloadConfig) -> OverloadReport:
    """Build, squeeze, (optionally) close the loop, run, and measure."""
    scenario = ScenarioConfig(
        scenario="C", duration=config.duration, seed=config.seed,
        rate_fast=config.rate_fast, rate_slow=config.rate_slow,
        ets_delta=config.ets_delta, batch_size=config.batch_size)

    handles = build_union_scenario(scenario)
    plan = make_overload_plan(config)

    graph = handles.graph
    fast, slow = handles.fast_source, handles.slow_source
    policy = (OnDemandEts(external_delta=config.ets_delta)
              if config.base_ets == "on-demand" else NoEts())
    monitor = InvariantMonitor(max_total_buffered=config.max_total_buffered,
                               mode="degrade")

    controller = None
    if config.feedback:
        controller = FeedbackController(
            high_watermark=config.high_watermark,
            low_watermark=config.low_watermark,
            overload_depth=config.overload_depth,
            relief_beats=config.relief_beats)
        nominal = (config.throttle_rate if config.throttle_rate is not None
                   else config.rate_fast * config.spike_factor)
        fast.throttle = TokenBucketThrottle(rate=nominal)

    sim = Simulation(graph, ets_policy=policy, batch_size=config.batch_size,
                     feedback=controller, monitor=monitor)
    plan.install(sim)

    _reattach_streams(sim, scenario, fast, slow, plan)
    recorder = LatencyRecorder(seed=config.seed)
    _chain_on_output(handles.sink, recorder)

    sim.run(until=config.duration)
    summary = sim.summary()

    return OverloadReport(
        config=config,
        summary=summary,
        fault_stats=plan.stats.as_dict(),
        latency=recorder.summary(),
        delivered=handles.sink.delivered,
        throttled=int(summary.get("throttled", 0)),
        peak_queue=sim.peak_queue_size,
        monitor_violations=monitor.violations,
    )


def _chain_on_output(sink, recorder: LatencyRecorder) -> None:
    previous = sink.on_output

    def record(tup, latency) -> None:
        recorder(tup, latency)
        if previous is not None:
            previous(tup, latency)

    sink.on_output = record


def _reattach_streams(sim: Simulation, scenario: ScenarioConfig,
                      fast, slow, plan: FaultPlan) -> None:
    import random

    from ..workloads.arrival import poisson_arrivals
    from ..workloads.datagen import uniform_value_payloads

    rng_fast = random.Random(scenario.seed)
    rng_slow = random.Random(scenario.seed + 1)
    fast_arrivals = poisson_arrivals(
        scenario.rate_fast, rng_fast,
        payloads=uniform_value_payloads(random.Random(scenario.seed + 2)))
    slow_arrivals = poisson_arrivals(
        scenario.rate_slow, rng_slow,
        payloads=uniform_value_payloads(random.Random(scenario.seed + 3)))
    sim.attach_arrivals(fast, fast_arrivals, faults=plan)
    sim.attach_arrivals(slow, slow_arrivals, faults=plan)
