"""Paper-claim validation: check every Section-6 claim in one pass.

The benches assert these claims piecemeal; this module centralizes them so
``python -m repro validate`` (or a notebook) can regenerate the paper's
entire evaluation and print a claim-by-claim verdict — the programmatic
version of EXPERIMENTS.md's summary table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from .figures import SweepResult, idle_waiting_table, run_sweep
from .runner import ExperimentResult

__all__ = ["ClaimResult", "validate_paper_claims", "format_claims",
           "run_validation"]


@dataclass(slots=True)
class ClaimResult:
    """Verdict on one claim from the paper's evaluation."""

    claim: str
    passed: bool
    details: str


def validate_paper_claims(sweep: SweepResult,
                          idle: dict[str, ExperimentResult]) -> list[ClaimResult]:
    """Evaluate every Section-6 claim against measured results."""
    results: list[ClaimResult] = []

    def check(claim: str, passed: bool, details: str) -> None:
        results.append(ClaimResult(claim, bool(passed), details))

    a = sweep.baselines["A"]
    c = sweep.baselines["C"]
    d = sweep.baselines["D"]

    # Figure 7 claims ------------------------------------------------- #
    check("A idle-waits for seconds (latency ≫ 1 s)",
          a.mean_latency > 1.0,
          f"A mean latency {a.mean_latency * 1e3:.0f} ms")
    check("C is orders of magnitude below A (≥ 10³x)",
          a.mean_latency / c.mean_latency > 1e3,
          f"A/C ratio {a.mean_latency / c.mean_latency:.2e}")
    gap_ms = (c.mean_latency - d.mean_latency) * 1e3
    check("C within ~0.1 ms of the latent optimum D",
          0.0 <= gap_ms < 0.3,
          f"C - D = {gap_ms:.4f} ms (paper: ~0.1 ms)")
    practical = sorted(r for r in sweep.periodic if r <= 100.0)
    lats = [sweep.periodic[r].mean_latency for r in practical]
    check("B latency drops regularly with injection rate (0.1-100/s)",
          all(hi > lo for hi, lo in zip(lats, lats[1:])),
          " > ".join(f"{v * 1e3:.3g}ms" for v in lats))
    best_b = min(res.mean_latency for res in sweep.periodic.values())
    check("periodic ETS cannot match on-demand",
          best_b > 2 * c.mean_latency,
          f"best B {best_b * 1e3:.3f} ms vs C {c.mean_latency * 1e3:.3f} ms")

    # Idle-waiting claims --------------------------------------------- #
    check("A spends ~99 % of time idle-waiting",
          idle["A"].idle_fraction > 0.90,
          f"measured {idle['A'].idle_fraction:.2%} (paper: 99 %)")
    check("B@100/s cuts idle-waiting to the ~15 % regime",
          0.05 < idle["B"].idle_fraction < 0.40,
          f"measured {idle['B'].idle_fraction:.2%} (paper: 15 %)")
    check("C cuts idle-waiting below ~0.1 %-scale",
          idle["C"].idle_fraction < 0.005,
          f"measured {idle['C'].idle_fraction:.3%} (paper: <0.1 %)")

    # Figure 8 claims -------------------------------------------------- #
    check("A peaks at thousands of buffered tuples",
          a.peak_queue > 1000,
          f"peak {a.peak_queue} tuples")
    check("C reduces memory by more than two orders of magnitude",
          a.peak_queue / max(1, c.peak_queue) > 100,
          f"A/C peak ratio {a.peak_queue / max(1, c.peak_queue):.0f}x")
    rates = sorted(sweep.periodic)
    peaks = [sweep.periodic[r].peak_queue for r in rates]
    check("B peak memory is U-shaped in the injection rate",
          min(peaks) < peaks[0] and peaks[-1] > 3 * min(peaks),
          f"peaks over rates {rates}: {peaks}")
    return results


def format_claims(results: list[ClaimResult]) -> str:
    rows = [["PASS" if r.passed else "FAIL", r.claim, r.details]
            for r in results]
    verdict = ("all claims hold"
               if all(r.passed for r in results)
               else "SOME CLAIMS FAILED")
    table = format_table(["verdict", "paper claim", "measured"], rows,
                         title="Paper Section 6 — claim-by-claim validation")
    return f"{table}\n\n=> {verdict}"


def run_validation(*, duration: float = 120.0, sweep_duration: float = 40.0,
                   seed: int = 42,
                   heartbeat_rates: tuple[float, ...] = (0.1, 1.0, 10.0,
                                                         100.0, 1000.0,
                                                         4000.0),
                   ) -> list[ClaimResult]:
    """Run the full evaluation and validate every claim (several minutes)."""
    sweep = run_sweep(duration=duration, sweep_duration=sweep_duration,
                      seed=seed, heartbeat_rates=heartbeat_rates)
    idle = idle_waiting_table(duration=duration, seed=seed,
                              heartbeat_rate=100.0)
    return validate_paper_claims(sweep, idle)
