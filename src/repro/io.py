"""Trace and result I/O: persist workloads and stream outputs as CSV.

Two use cases from the experiment workflow:

* **Workload capture/replay** — an arrival process (possibly random) can be
  written to disk once and replayed identically later or on another
  machine, making cross-implementation comparisons trace-for-trace exact.
* **Result capture** — a :class:`CsvSinkWriter` plugs into a sink's
  ``on_output`` callback and logs every delivered tuple with its timestamp
  and latency, so downstream analysis (pandas, gnuplot, spreadsheets)
  needs no Python.

Formats are plain CSV with a JSON-encoded payload column; everything round
trips through the standard library only.
"""

from __future__ import annotations

import csv
import io
import json
from typing import IO, Iterable, Iterator

from .core.errors import WorkloadError
from .core.tuples import DataTuple
from .sim.kernel import Arrival

__all__ = ["write_trace", "read_trace", "CsvSinkWriter"]

_TRACE_FIELDS = ("time", "external_ts", "payload")


def write_trace(arrivals: Iterable[Arrival], fp: IO[str]) -> int:
    """Write arrivals to ``fp`` as CSV; returns the number of rows written.

    The iterable is consumed; bound it first (``itertools.islice``) when
    capturing an infinite process.
    """
    writer = csv.writer(fp)
    writer.writerow(_TRACE_FIELDS)
    count = 0
    for arrival in arrivals:
        writer.writerow([
            repr(arrival.time),
            "" if arrival.external_ts is None else repr(arrival.external_ts),
            json.dumps(arrival.payload),
        ])
        count += 1
    return count


def read_trace(fp: IO[str]) -> Iterator[Arrival]:
    """Lazily read arrivals from a CSV written by :func:`write_trace`."""
    reader = csv.reader(fp)
    header = next(reader, None)
    if header is None or tuple(header) != _TRACE_FIELDS:
        raise WorkloadError(
            f"not an arrival trace: expected header {_TRACE_FIELDS}, "
            f"got {header}"
        )
    for line_no, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 3:
            raise WorkloadError(
                f"trace line {line_no}: expected 3 columns, got {len(row)}"
            )
        time_text, ts_text, payload_text = row
        yield Arrival(
            time=float(time_text),
            payload=json.loads(payload_text),
            external_ts=float(ts_text) if ts_text else None,
        )


class CsvSinkWriter:
    """Sink ``on_output`` callback that logs delivered tuples as CSV rows.

    Columns: stream timestamp, arrival timestamp, latency, then either the
    configured payload ``fields`` (one column each) or a single JSON
    ``payload`` column.

    Example::

        with open("results.csv", "w", newline="") as f:
            writer = CsvSinkWriter(f, fields=["symbol", "price"])
            graph.add_sink("out", on_output=writer)
            ...
    """

    def __init__(self, fp: IO[str], fields: list[str] | None = None) -> None:
        self._writer = csv.writer(fp)
        self.fields = list(fields) if fields is not None else None
        header = ["ts", "arrival_ts", "latency"]
        header += self.fields if self.fields is not None else ["payload"]
        self._writer.writerow(header)
        self.rows_written = 0

    def __call__(self, tup: DataTuple, latency: float) -> None:
        row: list = [repr(tup.ts), repr(tup.arrival_ts), repr(latency)]
        if self.fields is not None:
            payload = tup.payload
            row += [payload.get(f, "") for f in self.fields]
        else:
            row.append(json.dumps(tup.payload))
        self._writer.writerow(row)
        self.rows_written += 1


def trace_to_string(arrivals: Iterable[Arrival]) -> str:
    """Convenience: capture a bounded arrival iterable into a CSV string."""
    buf = io.StringIO()
    write_trace(arrivals, buf)
    return buf.getvalue()


def trace_from_string(text: str) -> Iterator[Arrival]:
    """Convenience: replay arrivals from a CSV string."""
    return read_trace(io.StringIO(text))
