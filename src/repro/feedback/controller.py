"""The feedback controller: closed-loop backpressure over the query graph.

The paper's on-demand ETS flows *downstream*: a stalled IWP operator
backtracks to a source and asks for a punctuation.  This module reuses the
same graph walk in the other direction — after Fernández-Moctezuma & Tufte,
punctuation generalizes to *upstream feedback assertions*: observed sink
latency, buffer pressure, frontier lag, and a drop budget, traveling
predecessor-ward so that shedders, reorder buffers, and source throttles
can react before overload turns into unbounded queues.

Three pieces:

* :func:`propagate_feedback` — delivers one
  :class:`~repro.core.tuples.FeedbackPunctuation` through the graph in
  reverse topological order.  Each operator receives the element-wise
  *max-combine* of the assertions its live successors forwarded (an
  operator feeding two congested paths reacts to the worse one), reacts
  via :meth:`Operator.on_feedback`, and its return value continues toward
  the predecessors.  Feedback never enters a stream buffer: the data path,
  the ordered-stream invariant, and every differential oracle are
  untouched by construction.
* :class:`FeedbackController` — per-engine sampler.  Once per wake-up it
  reads the buffer registry's interval peak and applies a hysteresis
  deadband: crossing ``high_watermark`` activates an overload episode
  (waves every ``refresh_every`` wake-ups), falling back through
  ``low_watermark`` deactivates it and starts a bounded train of *relief*
  beats that let AIMD throttles and shed budgets unwind gradually.
* The pressure view (:attr:`FeedbackController.pressure`) that the
  degradation ladder (:mod:`repro.faults.degrade`) consumes to make
  stall/quarantine decisions pressure-aware.

Everything the controller does is a pure function of engine state and the
virtual clock, and its own state is versioned via ``snapshot_state`` —
recovery replays controller decisions deterministically.
"""

from __future__ import annotations

from ..core.errors import PolicyError
from ..core.tuples import LATENT_TS, FeedbackPunctuation

__all__ = ["FeedbackController", "propagate_feedback"]


def propagate_feedback(graph, feedback: FeedbackPunctuation,
                       now: float) -> dict[str, FeedbackPunctuation]:
    """Deliver ``feedback`` predecessor-ward through ``graph``.

    Sink-level operators (no live successors) are seeded with the
    controller's assertion; every other operator receives the max-combine
    of whatever its live successors chose to forward.  Returns the map of
    operator name → assertion *received*, for tests and tracing.
    """
    outgoing: dict[str, FeedbackPunctuation] = {}
    delivered: dict[str, FeedbackPunctuation] = {}
    for op in reversed(graph.topological_order()):
        successors = graph.live_successors(op)
        incoming: FeedbackPunctuation | None = None
        if successors:
            for succ in successors:
                fwd = outgoing.get(succ.name)
                if fwd is None:
                    continue
                incoming = (fwd if incoming is None
                            else incoming.combined_with(fwd))
        else:
            incoming = feedback
        if incoming is None:
            continue
        delivered[op.name] = incoming
        forwarded = op.on_feedback(incoming, now)
        if forwarded is not None:
            outgoing[op.name] = forwarded
    return delivered


class FeedbackController:
    """Hysteresis sampler that turns buffer pressure into feedback waves.

    Args:
        high_watermark: Total buffered elements (interval peak) at which an
            overload episode begins.
        low_watermark: Depth at which an active episode ends.  Defaults to
            ``high_watermark // 4``.  The gap is the hysteresis deadband —
            the controller never flaps between emit and relief on small
            oscillations around one threshold.
        overload_depth: Depth mapped to pressure 1.0 (and the full drop
            budget).  Defaults to ``2 * high_watermark``.
        max_drop_budget: Ceiling on the drop budget carried by a wave.
        refresh_every: Wake-ups between waves while an episode is active
            (and between relief beats while unwinding).
        relief_beats: Relief waves emitted after an episode deactivates —
            the bounded unwind train for AIMD increase and budget decay.
        origin: Name stamped on emitted assertions.

    Attributes:
        episodes: Overload episodes entered so far.
        emitted / reliefs: Pressure and relief waves delivered.
    """

    def __init__(self, *, high_watermark: int = 256,
                 low_watermark: int | None = None,
                 overload_depth: int | None = None,
                 max_drop_budget: float = 0.9,
                 refresh_every: int = 1,
                 relief_beats: int = 8,
                 origin: str = "feedback-controller") -> None:
        if high_watermark < 1:
            raise PolicyError(
                f"high_watermark must be >= 1, got {high_watermark}")
        self.high_watermark = int(high_watermark)
        self.low_watermark = (int(low_watermark) if low_watermark is not None
                              else self.high_watermark // 4)
        if not 0 <= self.low_watermark < self.high_watermark:
            raise PolicyError(
                f"low_watermark must be in [0, high_watermark), got "
                f"{self.low_watermark} vs {self.high_watermark}")
        self.overload_depth = (int(overload_depth)
                               if overload_depth is not None
                               else 2 * self.high_watermark)
        if self.overload_depth <= self.low_watermark:
            raise PolicyError("overload_depth must exceed low_watermark")
        if not 0.0 <= max_drop_budget <= 1.0:
            raise PolicyError(
                f"max_drop_budget must be in [0, 1], got {max_drop_budget}")
        if refresh_every < 1:
            raise PolicyError(
                f"refresh_every must be >= 1, got {refresh_every}")
        self.max_drop_budget = float(max_drop_budget)
        self.refresh_every = int(refresh_every)
        self.relief_beats = int(relief_beats)
        self.origin = origin

        self.graph = None
        self.engine = None
        self._active = False
        self._beats_left = 0
        self._last_wave_round = -1
        self.last_pressure = 0.0
        self.last_depth = 0
        self.clamped_pressure = 0.0
        self.episodes = 0
        self.emitted = 0
        self.reliefs = 0
        self.clamps = 0

    # ------------------------------------------------------------------ #
    # Wiring

    def bind(self, graph, engine) -> "FeedbackController":
        """Attach to one engine/graph pair (done by the engine ctor)."""
        self.graph = graph
        self.engine = engine
        graph.registry.mark()
        return self

    @property
    def pressure(self) -> float:
        """Live pressure view ``[0, 1]`` for the degradation ladder.

        The worse of the local hysteresis view and any externally clamped
        (sharded global) view — a shard that is locally idle still reacts
        to fleet-wide overload.
        """
        local = self.last_pressure if self._active else 0.0
        return max(local, self.clamped_pressure)

    @property
    def active(self) -> bool:
        """True while an overload episode is in progress."""
        return self._active

    # ------------------------------------------------------------------ #
    # Sampling (called once per engine wake-up)

    def sample(self, now: float, round_id: int) -> None:
        """Read occupancy, apply the hysteresis deadband, maybe emit."""
        registry = self.graph.registry
        depth = registry.peak_since_mark
        registry.mark()
        self.last_depth = depth

        if self._active:
            if depth <= self.low_watermark:
                self._active = False
                self.last_pressure = 0.0
                self._beats_left = self.relief_beats
                self._wave(now, round_id, depth, relief=True)
            elif round_id - self._last_wave_round >= self.refresh_every:
                self._wave(now, round_id, depth, relief=False)
        elif depth >= self.high_watermark:
            self._active = True
            self.episodes += 1
            self._beats_left = 0
            self._wave(now, round_id, depth, relief=False)
        elif (self._beats_left > 0
              and round_id - self._last_wave_round >= self.refresh_every):
            self._beats_left -= 1
            self._wave(now, round_id, depth, relief=True)

    # ------------------------------------------------------------------ #
    # Wave assembly

    def _pressure_of(self, depth: int) -> float:
        """Map a depth to normalized pressure over the deadband ramp."""
        span = self.overload_depth - self.low_watermark
        return min(1.0, max(0.0, (depth - self.low_watermark) / span))

    def _drop_budget_of(self, depth: int) -> float:
        """Budget ramps from 0 at the high watermark to max at overload."""
        span = self.overload_depth - self.high_watermark
        if span <= 0:
            return self.max_drop_budget if depth >= self.high_watermark else 0.0
        over = (depth - self.high_watermark) / span
        return self.max_drop_budget * min(1.0, max(0.0, over))

    def _observe_sinks(self) -> tuple[float, float]:
        """(worst sink latency, frontier lag) at this instant."""
        latency = 0.0
        for sink in self.graph.sinks():
            if sink.latency_max > latency:
                latency = sink.latency_max
        newest = LATENT_TS
        for source in self.graph.sources():
            if source.watermark > newest:
                newest = source.watermark
        oldest = None
        for buf in self.graph.buffers:
            head = buf.peek()
            if head is not None and head.ts != LATENT_TS:
                if oldest is None or head.ts < oldest:
                    oldest = head.ts
        lag = 0.0
        if oldest is not None and newest != LATENT_TS and newest > oldest:
            lag = newest - oldest
        return latency, lag

    def _drop_budget_from_pressure(self, pressure: float) -> float:
        """The budget a local wave at this pressure level would carry."""
        onset = self._pressure_of(self.high_watermark)
        if pressure <= onset or onset >= 1.0:
            return 0.0
        return self.max_drop_budget * min(
            1.0, (pressure - onset) / (1.0 - onset))

    def _wave(self, now: float, round_id: int, depth: int,
              *, relief: bool) -> None:
        pressure = 0.0 if relief else self._pressure_of(depth)
        budget = 0.0 if relief else self._drop_budget_of(depth)
        if relief:
            self.reliefs += 1
        else:
            self.emitted += 1
            self.last_pressure = pressure
        self._emit(now, round_id, depth, pressure, budget,
                   "relief" if relief else "pressure")

    def _emit(self, now: float, round_id: int, depth: int,
              pressure: float, budget: float, kind: str) -> None:
        latency, lag = self._observe_sinks()
        wave = FeedbackPunctuation(
            ts=now, origin=self.origin, pressure=pressure,
            buffer_depth=depth, sink_latency=latency, frontier_lag=lag,
            drop_budget=budget)
        self._last_wave_round = round_id
        propagate_feedback(self.graph, wave, now)
        bus = self.engine.bus if self.engine is not None else None
        if bus is not None:
            bus.feedback(kind=kind, round_id=round_id, time=now,
                         pressure=pressure, depth=depth, drop_budget=budget,
                         sink_latency=latency, frontier_lag=lag,
                         origin=self.origin)

    # ------------------------------------------------------------------ #
    # External clamps (sharded global pressure view)

    def clamp(self, pressure: float, now: float, round_id: int) -> None:
        """Apply an externally imposed pressure view.

        A :class:`~repro.shard.engine.ShardedEngine` aggregates per-shard
        pressure into a global maximum and broadcasts it back on the next
        wake-up (staleness is therefore bounded by one wake-up).  A
        positive clamp propagates a wave at that level regardless of local
        hysteresis state — a locally idle shard still throttles when the
        fleet is overloaded.  Dropping back to zero after a clamped
        stretch propagates one relief wave so AIMD throttles and shed
        budgets can unwind.
        """
        pressure = min(1.0, max(0.0, float(pressure)))
        previous = self.clamped_pressure
        self.clamped_pressure = pressure
        if pressure > 0.0:
            self.clamps += 1
            self._emit(now, round_id, self.last_depth, pressure,
                       self._drop_budget_from_pressure(pressure), "clamp")
        elif previous > 0.0:
            self.reliefs += 1
            self._emit(now, round_id, self.last_depth, 0.0, 0.0, "relief")

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of the hysteresis state and counters."""
        return {
            "version": 1,
            "active": self._active,
            "beats_left": self._beats_left,
            "last_wave_round": self._last_wave_round,
            "last_pressure": self.last_pressure,
            "last_depth": self.last_depth,
            "clamped_pressure": self.clamped_pressure,
            "episodes": self.episodes,
            "emitted": self.emitted,
            "reliefs": self.reliefs,
            "clamps": self.clamps,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise PolicyError(
                f"unsupported FeedbackController state: {state!r}")
        self._active = state["active"]
        self._beats_left = state["beats_left"]
        self._last_wave_round = state["last_wave_round"]
        self.last_pressure = state["last_pressure"]
        self.last_depth = state["last_depth"]
        self.clamped_pressure = state.get("clamped_pressure", 0.0)
        self.episodes = state["episodes"]
        self.emitted = state["emitted"]
        self.reliefs = state["reliefs"]
        self.clamps = state.get("clamps", 0)

    def summary(self) -> dict:
        """Counters under canonical snake_case names (for reports)."""
        return {
            "feedback_episodes": self.episodes,
            "feedback_waves": self.emitted,
            "feedback_reliefs": self.reliefs,
            "feedback_clamps": self.clamps,
            "feedback_pressure": self.pressure,
            "feedback_depth": self.last_depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FeedbackController(high={self.high_watermark}, "
                f"low={self.low_watermark}, active={self._active})")
