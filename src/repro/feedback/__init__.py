"""Closed-loop backpressure: upstream feedback punctuation and reactions.

See DESIGN.md section 4h.  The public pieces:

* :class:`FeedbackController` — per-engine hysteresis sampler emitting
  :class:`~repro.core.tuples.FeedbackPunctuation` waves;
* :func:`propagate_feedback` — reverse-topological max-combine delivery;
* :class:`TokenBucketThrottle` — AIMD admission control for sources.
"""

from .controller import FeedbackController, propagate_feedback
from .throttle import TokenBucketThrottle

__all__ = [
    "FeedbackController",
    "TokenBucketThrottle",
    "propagate_feedback",
]
