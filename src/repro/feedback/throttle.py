"""AIMD token-bucket admission throttle for source nodes.

The throttle sits at the very front of :meth:`SourceNode.ingest`: every
record costs one token, the bucket refills at ``rate`` tokens per virtual
second, and a record arriving to an empty bucket is refused (the source
counts it and returns None, exactly the quarantine-drop contract).

The rate itself is closed-loop controlled the way TCP controls its window
— additive increase, multiplicative decrease:

* a **pressure** feedback wave multiplies the rate by ``decrease``
  (default 0.5), clamped at ``min_rate``;
* a **relief** wave adds ``increase`` tokens/s (default ``rate / 10``),
  clamped at ``max_rate`` (the configured healthy rate).

Everything is driven by the virtual clock and plain arithmetic — no wall
clock, no RNG — so a recovered run replays the same admission decisions
(the bucket state travels in :meth:`snapshot_state`).
"""

from __future__ import annotations

from ..core.errors import PolicyError

__all__ = ["TokenBucketThrottle"]


class TokenBucketThrottle:
    """Token-bucket admission control with AIMD rate adaptation.

    Args:
        rate: Healthy-path admission rate in records per virtual second;
            also the default ``max_rate`` ceiling.
        capacity: Bucket depth in tokens (burst tolerance).  Defaults to
            one second's worth (``rate``), minimum 1.
        increase: Additive-increase step per relief beat, tokens/s.
            Defaults to ``rate / 10``.
        decrease: Multiplicative-decrease factor per pressure wave,
            in ``(0, 1)``.
        min_rate: Floor the rate never drops below.  Defaults to
            ``rate / 100``.
        max_rate: Ceiling the rate never recovers past.  Defaults to
            ``rate``.

    Attributes:
        admitted / denied: Admission decision counters.
        decreases / increases: AIMD events applied so far.
    """

    def __init__(self, rate: float, *, capacity: float | None = None,
                 increase: float | None = None, decrease: float = 0.5,
                 min_rate: float | None = None,
                 max_rate: float | None = None) -> None:
        if rate <= 0:
            raise PolicyError(f"throttle rate must be > 0, got {rate}")
        if not 0.0 < decrease < 1.0:
            raise PolicyError(
                f"throttle decrease must be in (0, 1), got {decrease}")
        self.rate = float(rate)
        self.capacity = max(1.0, float(capacity if capacity is not None
                                       else rate))
        self.increase = float(increase if increase is not None
                              else rate / 10.0)
        self.decrease = float(decrease)
        self.min_rate = float(min_rate if min_rate is not None
                              else rate / 100.0)
        self.max_rate = float(max_rate if max_rate is not None else rate)
        self._tokens = self.capacity
        self._last_refill: float | None = None
        self.admitted = 0
        self.denied = 0
        self.decreases = 0
        self.increases = 0

    # ------------------------------------------------------------------ #
    # Admission

    def admit(self, now: float) -> bool:
        """Spend one token at virtual time ``now``; False refuses the record."""
        if self._last_refill is None:
            self._last_refill = now
        elif now > self._last_refill:
            self._tokens = min(self.capacity, self._tokens
                               + (now - self._last_refill) * self.rate)
            self._last_refill = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.denied += 1
        return False

    # ------------------------------------------------------------------ #
    # AIMD control

    def on_feedback(self, feedback) -> None:
        """Apply one AIMD step from an upstream feedback wave."""
        if feedback.is_relief:
            if self.rate < self.max_rate:
                self.rate = min(self.max_rate, self.rate + self.increase)
                self.increases += 1
        else:
            if self.rate > self.min_rate:
                self.rate = max(self.min_rate, self.rate * self.decrease)
                self.decreases += 1
            # A pressure wave also drains any accumulated burst allowance:
            # the backlog downstream *is* the burst we already admitted.
            if self._tokens > 1.0:
                self._tokens = 1.0

    @property
    def denied_fraction(self) -> float:
        """Fraction of records refused so far (nan before any decision)."""
        total = self.admitted + self.denied
        if not total:
            return float("nan")
        return self.denied / total

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of the bucket and AIMD state."""
        return {
            "version": 1,
            "rate": self.rate,
            "tokens": self._tokens,
            "last_refill": self._last_refill,
            "admitted": self.admitted,
            "denied": self.denied,
            "decreases": self.decreases,
            "increases": self.increases,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise PolicyError(
                f"unsupported TokenBucketThrottle state: {state!r}")
        self.rate = state["rate"]
        self._tokens = state["tokens"]
        self._last_refill = state["last_refill"]
        self.admitted = state["admitted"]
        self.denied = state["denied"]
        self.decreases = state["decreases"]
        self.increases = state["increases"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TokenBucketThrottle(rate={self.rate:g}, "
                f"tokens={self._tokens:.1f})")
