"""Command-line interface: run scenarios, figures, and query programs.

Examples::

    python -m repro scenario C --duration 120
    python -m repro scenario B --heartbeat-rate 100 --join
    python -m repro figure 7 --sweep-duration 40
    python -m repro idle --heartbeat-rate 100
    python -m repro trace --format chrome --out trace.json
    python -m repro metrics --format prometheus
    python -m repro recover --crash-at 30 --checkpoint-every 50
    python -m repro run query.esl --until 60 --source fast:poisson:50 \\
        --source slow:poisson:0.05 --ets on-demand

The CLI is a thin veneer over the :mod:`repro.api` facade — everything it
prints can be produced programmatically with the same public names.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Sequence

from .api import (
    SCENARIOS,
    ChromeTraceExporter,
    ExperimentResult,
    JsonlExporter,
    MetricsRegistry,
    NoEts,
    OnDemandEts,
    Pipeline,
    QueryGraph,
    ElasticShardedEngine,
    ShardedEngine,
    TimestampKind,
    WindowJoin,
    WindowSpec,
    ReproError,
    ScenarioConfig,
    build_join_scenario,
    build_union_scenario,
    compile_query,
    constant_arrivals,
    format_figure7,
    format_figure8,
    format_idle_table,
    format_table,
    idle_waiting_table,
    poisson_arrivals,
    run_join_experiment,
    run_sweep,
    run_union_experiment,
    uniform_value_payloads,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Optimizing Timestamp Management in "
                    "Data Stream Management Systems' (ICDE 2007)")
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser(
        "scenario", help="run one of the paper's scenarios A/B/C/D")
    scenario.add_argument("name", choices=SCENARIOS)
    scenario.add_argument("--duration", type=float, default=120.0,
                          help="simulated seconds (default 120)")
    scenario.add_argument("--rate-fast", type=float, default=50.0)
    scenario.add_argument("--rate-slow", type=float, default=0.05)
    scenario.add_argument("--heartbeat-rate", type=float, default=None,
                          help="periodic-ETS rate (required for scenario B)")
    scenario.add_argument("--seed", type=int, default=42)
    scenario.add_argument("--join", action="store_true",
                          help="use the window-join variant of the query")
    scenario.add_argument("--strict", action="store_true",
                          help="use the strict Fig.-1 IWP gating (ablation)")

    figure = sub.add_parser(
        "figure", help="regenerate paper figure 7 or 8")
    figure.add_argument("number", type=int, choices=(7, 8))
    figure.add_argument("--duration", type=float, default=120.0)
    figure.add_argument("--sweep-duration", type=float, default=40.0)
    figure.add_argument("--seed", type=int, default=42)
    figure.add_argument("--rates", type=str,
                        default="0.1,1,10,100,1000",
                        help="comma-separated periodic-ETS rates for line B")

    idle = sub.add_parser(
        "idle", help="regenerate the Section-6 idle-waiting table")
    idle.add_argument("--duration", type=float, default=120.0)
    idle.add_argument("--heartbeat-rate", type=float, default=100.0)
    idle.add_argument("--seed", type=int, default=42)

    profile = sub.add_parser(
        "profile", help="run a scenario and print the operator load profile")
    profile.add_argument("name", choices=SCENARIOS)
    profile.add_argument("--duration", type=float, default=60.0)
    profile.add_argument("--rate-fast", type=float, default=50.0)
    profile.add_argument("--rate-slow", type=float, default=0.05)
    profile.add_argument("--heartbeat-rate", type=float, default=None)
    profile.add_argument("--seed", type=int, default=42)

    dot = sub.add_parser(
        "dot", help="compile a query-language program and print Graphviz DOT")
    dot.add_argument("program", help="path to the .esl program file")

    validate = sub.add_parser(
        "validate",
        help="regenerate the full evaluation and check every paper claim")
    validate.add_argument("--duration", type=float, default=120.0)
    validate.add_argument("--sweep-duration", type=float, default=40.0)
    validate.add_argument("--seed", type=int, default=42)
    validate.add_argument("--rates", type=str,
                          default="0.1,1,10,100,1000,4000")

    chaos = sub.add_parser(
        "chaos",
        help="fault-inject the union scenario and report recovery metrics")
    chaos.add_argument("--duration", type=float, default=120.0,
                       help="simulated seconds (default 120)")
    chaos.add_argument("--rate-fast", type=float, default=50.0)
    chaos.add_argument("--rate-slow", type=float, default=0.5)
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--external", action="store_true",
                       help="externally timestamped streams + skew-bound ETS")
    chaos.add_argument("--outage-start", type=float, default=30.0)
    chaos.add_argument("--outage-duration", type=float, default=30.0)
    chaos.add_argument("--outage-mode", choices=("drop", "defer"),
                       default="drop")
    chaos.add_argument("--skew-spike", type=float, default=0.0,
                       help="clock-skew spike magnitude in seconds (0 = off)")
    chaos.add_argument("--drop-probability", type=float, default=0.0)
    chaos.add_argument("--stall-timeout", type=float, default=2.0,
                       help="silence before a source is degraded")
    chaos.add_argument("--heartbeat-period", type=float, default=0.5,
                       help="fallback heartbeat period once degraded")
    chaos.add_argument("--quarantine", choices=("raise", "drop", "clamp"),
                       default="clamp")
    chaos.add_argument("--base-ets", choices=("on-demand", "none"),
                       default="on-demand",
                       help="healthy-path ETS policy under the ladder")
    chaos.add_argument("--no-degrade", action="store_true",
                       help="baseline: on-demand ETS without the fallback "
                            "ladder")
    chaos.add_argument("--batch-size", type=int, default=1)
    chaos.add_argument("--crash-at", type=float, default=None,
                       help="crash-stop the process at this instant and "
                            "recover from durable state instead of running "
                            "the outage plan (see 'repro recover')")
    chaos.add_argument("--checkpoint-every", type=int, default=50,
                       help="with --crash-at: checkpoint every N engine "
                            "rounds")
    chaos.add_argument("--state-dir", type=str, default=None,
                       help="with --crash-at: checkpoint/WAL directory "
                            "(default: a temp directory, removed after)")
    chaos.add_argument("--overload", action="store_true",
                       help="run the overload squeeze (load spike + slow "
                            "sink) instead of the outage plan, comparing "
                            "open- vs closed-loop backpressure")
    chaos.add_argument("--spike-start", type=float, default=10.0)
    chaos.add_argument("--spike-duration", type=float, default=20.0)
    chaos.add_argument("--spike-factor", type=float, default=6.0,
                       help="arrival-rate multiplier during the spike")
    chaos.add_argument("--sink-extra", type=float, default=0.004,
                       help="extra seconds per sink step during the spike")
    chaos.add_argument("--high-watermark", type=int, default=48,
                       help="buffer depth activating the feedback "
                            "controller (closed-loop run)")
    chaos.add_argument("--open-loop-only", action="store_true",
                       help="with --overload: skip the closed-loop run")

    recover = sub.add_parser(
        "recover",
        help="crash-stop + recovery demonstration: run the union scenario, "
             "kill it mid-run, recover from checkpoint + WAL, and verify "
             "the combined output is byte-identical to an uncrashed run")
    recover.add_argument("--duration", type=float, default=60.0)
    recover.add_argument("--crash-at", type=float, default=30.0,
                         help="virtual-clock instant of the crash")
    recover.add_argument("--checkpoint-every", type=int, default=50,
                         help="checkpoint every N engine rounds")
    recover.add_argument("--rate-fast", type=float, default=50.0)
    recover.add_argument("--rate-slow", type=float, default=0.5)
    recover.add_argument("--seed", type=int, default=42)
    recover.add_argument("--batch-size", type=int, default=1)
    recover.add_argument("--base-ets", choices=("on-demand", "none"),
                         default="on-demand")
    recover.add_argument("--state-dir", type=str, default=None,
                         help="checkpoint/WAL directory (default: a temp "
                              "directory, removed after)")
    recover.add_argument("--corrupt-latest", action="store_true",
                         help="corrupt the newest checkpoint before "
                              "recovering, demonstrating the loud fallback")
    recover.add_argument("--no-fsync", action="store_true",
                         help="skip fsync on WAL appends (faster, less "
                              "durable tail)")

    shard = sub.add_parser(
        "shard",
        help="run a keyed window-join workload on the sharded engine and "
             "verify its merged output against a single-engine run")
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument("--backend", choices=("serial", "thread", "process"),
                       default="thread")
    shard.add_argument("--tuples", type=int, default=4000,
                       help="total tuples fed across both join inputs")
    shard.add_argument("--rate", type=float, default=100.0,
                       help="arrivals per stream-second")
    shard.add_argument("--cardinality", type=int, default=64,
                       help="distinct join keys")
    shard.add_argument("--span", type=float, default=2.0,
                       help="join window span in stream seconds")
    shard.add_argument("--batch-size", type=int, default=8)
    shard.add_argument("--chunk", type=int, default=32,
                       help="arrivals routed between engine wake-ups")
    shard.add_argument("--ets", choices=("none", "on-demand"),
                       default="none")
    shard.add_argument("--seed", type=int, default=42)
    shard.add_argument("--indexed", action="store_true",
                       help="force the hash-indexed join layout "
                            "(default: adaptive auto-selection)")
    shard.add_argument("--no-verify", action="store_true",
                       help="skip the single-engine differential check")
    shard.add_argument("--timeout", type=float, default=60.0,
                       help="per-shard operation timeout in seconds")
    shard.add_argument("--reshard", action="store_true",
                       help="exercise live resharding: grow to P+1 a third "
                            "of the way in, shrink back to P at two thirds, "
                            "and verify the merged output still equals the "
                            "single-engine run")

    def _add_obs_scenario_args(p: argparse.ArgumentParser,
                               default_duration: float) -> None:
        p.add_argument("name", nargs="?", choices=SCENARIOS, default="C",
                       help="scenario to instrument (default C)")
        p.add_argument("--duration", type=float, default=default_duration)
        p.add_argument("--rate-fast", type=float, default=50.0)
        p.add_argument("--rate-slow", type=float, default=0.05)
        p.add_argument("--heartbeat-rate", type=float, default=None)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--join", action="store_true",
                       help="instrument the window-join variant of the "
                            "query (exposes the join-probe counters)")
        p.add_argument("--out", type=str, default=None,
                       help="write to this path instead of stdout")

    trace = sub.add_parser(
        "trace",
        help="run a scenario with the event bus attached and export the "
             "event stream")
    _add_obs_scenario_args(trace, default_duration=5.0)
    trace.add_argument("--format", choices=("jsonl", "chrome"),
                       default="jsonl",
                       help="jsonl = one event per line; chrome = "
                            "chrome://tracing / Perfetto trace_event JSON")
    trace.add_argument("--limit", type=int, default=None,
                       help="cap on recorded events (jsonl only); hitting "
                            "it appends a terminal 'truncated' record")

    metrics = sub.add_parser(
        "metrics",
        help="run a scenario with the metrics registry attached and "
             "export the unified metrics snapshot")
    _add_obs_scenario_args(metrics, default_duration=30.0)
    metrics.add_argument("--format", choices=("table", "prometheus", "json"),
                         default="table")

    run = sub.add_parser(
        "run", help="compile and run a query-language program")
    run.add_argument("program", help="path to the .esl program file")
    run.add_argument("--until", type=float, required=True,
                     help="simulated seconds to run")
    run.add_argument("--source", action="append", default=[],
                     metavar="NAME:KIND:RATE",
                     help="arrival process per declared stream, e.g. "
                          "fast:poisson:50 or slow:constant:0.1")
    run.add_argument("--ets", choices=("on-demand", "none"),
                     default="on-demand")
    run.add_argument("--heartbeat", action="append", default=[],
                     metavar="NAME:RATE",
                     help="periodic-ETS injection on a stream")
    run.add_argument("--seed", type=int, default=42)
    return parser


def _print_result(result: ExperimentResult) -> None:
    print(format_table(ExperimentResult.row_headers(), [result.as_row()]))
    print(f"engine steps: {result.engine_steps} "
          f"(data {result.data_steps}, punctuation {result.punct_steps}); "
          f"ETS injected: {result.ets_injected}; "
          f"CPU utilization: {result.cpu_utilization:.3%}")


def _cmd_scenario(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        scenario=args.name, duration=args.duration, seed=args.seed,
        rate_fast=args.rate_fast, rate_slow=args.rate_slow,
        heartbeat_rate=args.heartbeat_rate, strict_iwp=args.strict)
    if args.join:
        result = run_join_experiment(config)
    else:
        result = run_union_experiment(config)
    _print_result(result)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    rates = tuple(float(r) for r in args.rates.split(",") if r)
    sweep = run_sweep(duration=args.duration,
                      sweep_duration=args.sweep_duration,
                      seed=args.seed, heartbeat_rates=rates)
    if args.number == 7:
        print(format_figure7(sweep))
    else:
        print(format_figure8(sweep))
    return 0


def _cmd_idle(args: argparse.Namespace) -> int:
    results = idle_waiting_table(duration=args.duration, seed=args.seed,
                                 heartbeat_rate=args.heartbeat_rate)
    print(format_idle_table(results))
    return 0


def _parse_source_spec(spec: str) -> tuple[str, str, float]:
    parts = spec.split(":")
    if len(parts) != 3:
        raise ReproError(
            f"bad --source spec {spec!r}; expected NAME:KIND:RATE")
    name, kind, rate = parts
    if kind not in ("poisson", "constant"):
        raise ReproError(
            f"bad --source kind {kind!r}; expected poisson or constant")
    return name, kind, float(rate)


def _cmd_profile(args: argparse.Namespace) -> int:
    from .api import format_profile, profile_simulation

    config = ScenarioConfig(
        scenario=args.name, duration=args.duration, seed=args.seed,
        rate_fast=args.rate_fast, rate_slow=args.rate_slow,
        heartbeat_rate=args.heartbeat_rate)
    handles = build_union_scenario(config).run()
    print(format_profile(
        profile_simulation(handles.sim),
        title=f"operator profile — scenario {args.name}, "
              f"{args.duration:g}s simulated"))
    print(f"union idle-waiting: "
          f"{handles.sim.idle_fraction('union'):.2%}; "
          f"peak queue {handles.sim.peak_queue_size} tuples")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    with open(args.program) as f:
        compiled = compile_query(f.read(), name=args.program)
    print(compiled.graph.to_dot())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .api import format_claims, run_validation

    rates = tuple(float(r) for r in args.rates.split(",") if r)
    results = run_validation(duration=args.duration,
                             sweep_duration=args.sweep_duration,
                             seed=args.seed, heartbeat_rates=rates)
    print(format_claims(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .api import ChaosConfig, run_chaos_experiment

    if args.overload:
        return _run_overload(args)

    if args.crash_at is not None:
        return _run_crash(
            duration=args.duration, crash_at=args.crash_at,
            checkpoint_every=args.checkpoint_every,
            rate_fast=args.rate_fast, rate_slow=args.rate_slow,
            seed=args.seed, batch_size=args.batch_size,
            base_ets=args.base_ets, state_dir=args.state_dir,
            corrupt_latest=False, fsync=True)

    config = ChaosConfig(
        duration=args.duration, rate_fast=args.rate_fast,
        rate_slow=args.rate_slow, seed=args.seed, external=args.external,
        outage_start=args.outage_start, outage_duration=args.outage_duration,
        outage_mode=args.outage_mode, skew_spike=args.skew_spike,
        drop_probability=args.drop_probability,
        stall_timeout=args.stall_timeout,
        heartbeat_period=args.heartbeat_period,
        quarantine_mode=args.quarantine, degrade=not args.no_degrade,
        base_ets=args.base_ets, batch_size=args.batch_size)
    report = run_chaos_experiment(config)
    base = ("on-demand ETS" if config.base_ets == "on-demand" else "no ETS")
    ladder = (f"{base} + fallback heartbeats"
              if config.degrade else f"{base} only (baseline)")
    print(format_table(
        ["metric", "value"], [list(r) for r in report.rows()],
        title=f"chaos: fast-stream outage "
              f"[{config.outage_start:g}s, "
              f"{config.outage_start + config.outage_duration:g}s) — "
              f"{ladder}"))
    return 0


def _run_overload(args: argparse.Namespace) -> int:
    from .api import OverloadConfig, run_overload_experiment

    def run(feedback: bool):
        config = OverloadConfig(
            duration=args.duration, rate_fast=args.rate_fast,
            rate_slow=args.rate_slow, seed=args.seed,
            base_ets=args.base_ets, batch_size=args.batch_size,
            spike_start=args.spike_start,
            spike_duration=args.spike_duration,
            spike_factor=args.spike_factor, sink_extra=args.sink_extra,
            high_watermark=args.high_watermark, feedback=feedback)
        report = run_overload_experiment(config)
        loop = "closed loop (feedback)" if feedback else "open loop"
        print(format_table(
            ["metric", "value"], [list(r) for r in report.rows()],
            title=f"overload: {args.spike_factor:g}x spike "
                  f"[{args.spike_start:g}s, "
                  f"{args.spike_start + args.spike_duration:g}s) — {loop}"))
        return report

    run(False)
    if not args.open_loop_only:
        run(True)
    return 0


def _run_crash(**kwargs) -> int:
    from .api import CrashConfig, run_crash_experiment

    config = CrashConfig(**kwargs)
    report = run_crash_experiment(config)
    print(format_table(
        ["metric", "value"], [list(r) for r in report.rows()],
        title=f"crash-stop at t={config.crash_at:g}s, recovery, resume to "
              f"t={config.duration:g}s (checkpoint every "
              f"{config.checkpoint_every} rounds)"))
    return 0 if report.identical else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    return _run_crash(
        duration=args.duration, crash_at=args.crash_at,
        checkpoint_every=args.checkpoint_every,
        rate_fast=args.rate_fast, rate_slow=args.rate_slow,
        seed=args.seed, batch_size=args.batch_size, base_ets=args.base_ets,
        state_dir=args.state_dir, corrupt_latest=args.corrupt_latest,
        fsync=not args.no_fsync)


def _cmd_shard(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    dt = 1.0 / args.rate
    feeds = []
    for i in range(args.tuples):
        t = (i + 1) * dt
        payload = {"key": rng.randrange(args.cardinality), "seq": i}
        feeds.append(("L" if i % 2 == 0 else "R", t, payload, t))

    def build() -> QueryGraph:
        graph = QueryGraph("sharded-join")
        left = graph.add_source("L", TimestampKind.EXTERNAL)
        right = graph.add_source("R", TimestampKind.EXTERNAL)
        join = graph.add(WindowJoin(
            "join", WindowSpec.time(args.span), key="key",
            indexed=True if args.indexed else None))
        graph.connect(left, join)
        graph.connect(right, join)
        graph.connect(join, graph.add_sink("out"))
        return graph

    def policy():
        return OnDemandEts() if args.ets == "on-demand" else NoEts()

    def drive(shards: int, backend: str, observers=None, reshards=None):
        cls = ElasticShardedEngine if reshards else ShardedEngine
        engine = cls(
            build, shards=shards, key="key", backend=backend,
            ets_policy_factory=policy, batch_size=args.batch_size,
            observers=observers, op_timeout=args.timeout)
        schedule = dict(reshards or {})
        started = time.perf_counter()
        records = []
        for index, (source, t, payload, ts) in enumerate(feeds):
            if index in schedule:
                report = engine.reshard(schedule.pop(index), reason="cli")
                records.extend(report.released)
            engine.ingest(source, payload, time=t, ts=ts)
            if (index + 1) % args.chunk == 0:
                records.extend(engine.wakeup())
        final_ts = feeds[-1][1] + 1.0
        for name in ("L", "R"):
            engine.inject_punctuation(name, final_ts, origin=f"eos:{name}")
        records.extend(engine.wakeup())
        wall = time.perf_counter() - started
        summary = engine.summary()
        reports = list(getattr(engine, "reshards", ()))
        records.extend(engine.close(flush=True))
        return records, wall, summary, reports

    reshards = None
    if args.reshard:
        # Grow at the first chunk boundary past 1/3, shrink back at 2/3.
        reshards = {int(len(feeds) * f) // args.chunk * args.chunk: target
                    for f, target in ((1 / 3, args.shards + 1),
                                      (2 / 3, args.shards))}

    registry = MetricsRegistry()
    records, wall, summary, reports = drive(args.shards, args.backend,
                                            observers=[registry],
                                            reshards=reshards)
    print(f"sharded run: P={args.shards} backend={args.backend} "
          f"ets={args.ets} batch={args.batch_size}")
    print(f"  {args.tuples} tuples in {wall:.3f}s wall "
          f"({args.tuples / wall:,.0f} tuples/s), "
          f"{len(records)} records merged, "
          f"frontier spread {summary['frontier_spread']:.3f}")
    print(f"  {'shard':>5} {'ingested':>9} {'delivered':>10} "
          f"{'frontier':>9}")
    for row in summary["per_shard"]:
        print(f"  {row['shard']:>5} {row['ingested']:>9} "
              f"{row['delivered']:>10} {row['frontier']:>9.2f}")
    released = registry.shard_released.total
    print(f"  repro_shard_released_total {released:g}")
    for report in reports:
        print(f"  reshard {report.direction}: epoch {report.epoch}, "
              f"{report.migrated_keys}/{report.total_keys} keys migrated, "
              f"{report.replayed_ingests} ingests replayed, "
              f"pause {report.pause_seconds * 1e3:.1f}ms")
    if args.no_verify:
        return 0
    reference, ref_wall, _, _ = drive(1, "serial")

    def canonical(rows):
        return sorted((r[3], r[0], repr(r[4])) for r in rows)

    if canonical(records) != canonical(reference):
        print(f"DIVERGED: sharded produced {len(records)} records, "
              f"single engine {len(reference)}", file=sys.stderr)
        return 1
    print(f"  verified: merged output equals single-engine run "
          f"({len(reference)} records; single-engine wall {ref_wall:.3f}s)")
    return 0


def _obs_config(args: argparse.Namespace, observers: list) -> ScenarioConfig:
    return ScenarioConfig(
        scenario=args.name, duration=args.duration, seed=args.seed,
        rate_fast=args.rate_fast, rate_slow=args.rate_slow,
        heartbeat_rate=args.heartbeat_rate, observers=observers)


def _emit(text: str, out: str | None) -> None:
    if out is None:
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        with open(out, "w") as f:
            f.write(text)
        print(f"wrote {out}")


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.format == "chrome":
        exporter = ChromeTraceExporter()
    else:
        exporter = JsonlExporter(capacity=args.limit)
    build = build_join_scenario if args.join else build_union_scenario
    handles = build(_obs_config(args, [exporter])).run()
    if args.format == "chrome":
        _emit(exporter.to_json(), args.out)
    else:
        _emit("\n".join(exporter.lines()) + "\n", args.out)
    sim = handles.sim
    print(f"# {sim.arrivals_delivered} arrivals, "
          f"{sim.engine.stats.steps} engine steps, "
          f"{sim.engine.stats.rounds} rounds in "
          f"{args.duration:g}s simulated", file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    build = build_join_scenario if args.join else build_union_scenario
    handles = build(_obs_config(args, [registry])).run()
    registry.absorb_simulation(handles.sim)
    if args.format == "prometheus":
        _emit(registry.render_prometheus(), args.out)
    elif args.format == "json":
        _emit(json.dumps(registry.as_dict(), indent=2, sort_keys=True)
              + "\n", args.out)
    else:
        _emit(format_table(
            ["metric", "value"], [list(r) for r in registry.rows()],
            title=f"metrics — scenario {args.name}, "
                  f"{args.duration:g}s simulated") + "\n", args.out)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.program) as f:
        text = f.read()
    pipeline = Pipeline.from_program(text, name=args.program)
    pipeline.engine(
        ets_policy=OnDemandEts() if args.ets == "on-demand" else NoEts())
    for spec in args.heartbeat:
        name, _, rate = spec.partition(":")
        pipeline.heartbeat(name, float(rate))

    seed = args.seed
    declared = pipeline.compiled.sources
    for spec in args.source:
        name, kind, rate = _parse_source_spec(spec)
        if name not in declared:
            raise ReproError(
                f"--source {name!r}: program declares no such stream "
                f"(has {sorted(declared)})")
        payloads = uniform_value_payloads(random.Random(seed + 1))
        if kind == "poisson":
            arrivals = poisson_arrivals(rate, random.Random(seed),
                                        payloads=payloads)
        else:
            arrivals = constant_arrivals(rate, payloads=payloads)
        pipeline.feed(name, arrivals)
        seed += 2

    sim = pipeline.run(until=args.until)

    rows = [[name, sink.delivered,
             sink.mean_latency * 1e3, sink.punctuation_eliminated]
            for name, sink in pipeline.sinks.items()]
    print(format_table(
        ["sink", "delivered", "mean latency (ms)", "punctuation absorbed"],
        rows, title=f"{args.program} after {args.until:g} simulated seconds"))
    print(f"peak total queue size: {sim.peak_queue_size}; "
          f"ETS injected: {sim.engine.stats.ets_injected}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "scenario": _cmd_scenario,
        "figure": _cmd_figure,
        "idle": _cmd_idle,
        "profile": _cmd_profile,
        "dot": _cmd_dot,
        "validate": _cmd_validate,
        "chaos": _cmd_chaos,
        "recover": _cmd_recover,
        "shard": _cmd_shard,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "run": _cmd_run,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
