"""ETS value generation (paper Section 5, "On-Demand Generation of ETS").

When execution backtracks to a source node whose input buffer is empty, the
node generates an Enabling Time-Stamp:

* **internally timestamped** streams: the ETS value is the current system
  (virtual) clock — any tuple that enters later will be stamped later;
* **externally timestamped** streams: the ETS value is application-dependent;
  the canonical technique (Srivastava & Widom, PODS 2004; quoted by the
  paper) is the skew bound ``t + τ − δ`` where ``t`` is the last tuple's
  timestamp, ``τ`` the time elapsed since it arrived, and ``δ`` the maximum
  skew between two arrivals;
* **latent** streams: never need ETS (they never idle-wait).

Generators are small strategy objects so experiments can swap them per
source.
"""

from __future__ import annotations

from typing import Protocol

from .operators.source import SourceNode
from .tuples import LATENT_TS, TimestampKind

__all__ = [
    "EtsGenerator",
    "InternalClockEts",
    "SkewBoundEts",
    "default_generator_for",
]


class EtsGenerator(Protocol):
    """Strategy producing ETS values for one stalled source."""

    def propose(self, source: SourceNode, now: float) -> float | None:
        """Return an ETS value for ``source`` at virtual time ``now``.

        Returning None means no useful ETS can be produced right now (the
        engine then leaves the path idle until real data arrives).
        """
        ...


class InternalClockEts:
    """ETS for internally timestamped streams: the current virtual clock.

    Correctness is immediate — internal timestamps are assigned on entry
    using the same clock, so every future tuple is stamped ≥ now.
    """

    def propose(self, source: SourceNode, now: float) -> float | None:
        return now


class SkewBoundEts:
    """Skew-bound ETS for externally timestamped streams: ``t + τ − δ``.

    Args:
        delta: Maximum skew (stream seconds) between an application timestamp
            and its arrival; larger deltas are safer but unblock less.
        allow_cold_start: Propose ``now − delta`` even before the first data
            tuple (assumes application time ≈ arrival time up to δ); off by
            default — a source that never produced anything gives no basis
            for estimation.
    """

    def __init__(self, delta: float, *, allow_cold_start: bool = False) -> None:
        if delta < 0:
            raise ValueError(f"skew delta must be non-negative, got {delta}")
        self.delta = float(delta)
        self.allow_cold_start = allow_cold_start

    def propose(self, source: SourceNode, now: float) -> float | None:
        if source.last_data_ts == LATENT_TS:
            if self.allow_cold_start:
                return now - self.delta
            return None
        elapsed = now - source.last_arrival_wall
        return source.last_data_ts + elapsed - self.delta


def default_generator_for(source: SourceNode, *,
                          external_delta: float = 0.0) -> EtsGenerator | None:
    """Pick the natural ETS generator for a source's timestamp kind."""
    kind = source.timestamp_kind
    if kind is TimestampKind.INTERNAL:
        return InternalClockEts()
    if kind is TimestampKind.EXTERNAL:
        return SkewBoundEts(external_delta)
    return None  # latent streams never need ETS
