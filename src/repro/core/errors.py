"""Exception hierarchy for the repro DSMS.

Every error raised by the library derives from :class:`ReproError`, so client
code can catch a single base class.  Sub-classes are grouped by the subsystem
that raises them (schemas, graphs, execution, timestamps) to keep diagnostics
precise without forcing callers to import many names.

Errors raised on the ingest/buffer hot paths carry *structured* context in
:attr:`ReproError.fields` (operator name, port index, offending timestamp,
last-seen timestamp, …) so that fault handlers, quarantine policies, and
chaos tests can react to the violation programmatically instead of parsing
the message.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro DSMS library.

    Args:
        message: Human-readable description.
        **fields: Structured context (e.g. ``operator=``, ``port=``,
            ``offending_ts=``, ``last_seen_ts=``), exposed as
            :attr:`fields` and via the named convenience properties.
    """

    def __init__(self, message: str = "", **fields: Any) -> None:
        super().__init__(message)
        self.fields: dict[str, Any] = fields

    @property
    def operator(self) -> str | None:
        """Name of the operator (or buffer consumer) where the error arose."""
        return self.fields.get("operator")

    @property
    def port(self) -> int | None:
        """Input-port index on :attr:`operator`, when applicable."""
        return self.fields.get("port")

    @property
    def offending_ts(self) -> float | None:
        """The timestamp that violated a rule, when applicable."""
        return self.fields.get("offending_ts")

    @property
    def last_seen_ts(self) -> float | None:
        """The last accepted timestamp before the violation, when applicable."""
        return self.fields.get("last_seen_ts")


class SchemaError(ReproError):
    """A record does not conform to the stream schema, or a schema is invalid."""


class TimestampError(ReproError):
    """A timestamp rule was violated (e.g. out-of-order data on an ordered stream)."""


class InvariantViolation(ReproError):
    """A runtime invariant monitor detected a broken engine invariant.

    Raised only when the monitor runs in ``halt`` mode; in ``degrade`` mode
    violations are counted and traced instead (see
    :mod:`repro.faults.monitors`).
    """


class GraphError(ReproError):
    """A query graph is structurally invalid (cycles, dangling ports, rewiring)."""


class ExecutionError(ReproError):
    """The execution engine reached an inconsistent state."""


class PolicyError(ReproError):
    """An ETS policy was configured or used incorrectly."""


class WorkloadError(ReproError):
    """A workload/arrival-process specification is invalid."""


class RecoveryError(ReproError):
    """Checkpoint/WAL storage failed or no valid checkpoint could be loaded.

    Individual corrupted checkpoints do *not* raise — recovery falls back to
    older ones with a loud bus/fault event; this error means the fallback
    chain itself was exhausted (or the recovery plumbing was misused).
    """


class QueryLanguageError(ReproError):
    """The mini continuous-query language failed to parse or compile."""
