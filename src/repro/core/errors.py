"""Exception hierarchy for the repro DSMS.

Every error raised by the library derives from :class:`ReproError`, so client
code can catch a single base class.  Sub-classes are grouped by the subsystem
that raises them (schemas, graphs, execution, timestamps) to keep diagnostics
precise without forcing callers to import many names.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro DSMS library."""


class SchemaError(ReproError):
    """A record does not conform to the stream schema, or a schema is invalid."""


class TimestampError(ReproError):
    """A timestamp rule was violated (e.g. out-of-order data on an ordered stream)."""


class GraphError(ReproError):
    """A query graph is structurally invalid (cycles, dangling ports, rewiring)."""


class ExecutionError(ReproError):
    """The execution engine reached an inconsistent state."""


class PolicyError(ReproError):
    """An ETS policy was configured or used incorrectly."""


class WorkloadError(ReproError):
    """A workload/arrival-process specification is invalid."""


class QueryLanguageError(ReproError):
    """The mini continuous-query language failed to parse or compile."""
