"""Tuple model: data tuples and punctuation tuples.

The paper distinguishes two kinds of stream elements:

* **data tuples** carry a payload (a record) plus a timestamp whose *kind*
  (external / internal / latent) determines how the engine treats ordering;
* **punctuation tuples** carry only a timestamp and exist to transport
  Enabling Time-Stamps (ETS) to idle-waiting operators.  They are consumed by
  IWP operators to advance their TSM registers, passed through non-IWP
  operators unchanged, and eliminated at sink nodes.

Timestamps are floats in *stream time* (simulated seconds in the DES
substrate).  ``LATENT_TS`` marks a tuple that has not been stamped yet; such
tuples bypass all ordering checks until an operator that needs a timestamp
stamps them on the fly (paper Section 5, "latent timestamps").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = [
    "TimestampKind",
    "LATENT_TS",
    "StreamElement",
    "DataTuple",
    "Punctuation",
    "FeedbackPunctuation",
    "is_data",
    "is_punctuation",
    "is_feedback",
    "ensure_seq_above",
]

#: Sentinel timestamp for tuples that have not been stamped yet.
LATENT_TS = float("-inf")

_SEQ = itertools.count()


def ensure_seq_above(seq: int) -> None:
    """Advance the global sequence counter past ``seq``.

    Recovery restores stream elements with their original sequence numbers;
    elements created after a restore must sort *after* every restored one so
    tie-breaking (reorder heaps, event queues) matches the uninterrupted run.
    Idempotent: a counter already past ``seq`` is left alone.
    """
    global _SEQ
    probe = next(_SEQ)
    if probe > seq:
        _SEQ = itertools.chain([probe], _SEQ)  # put the probe back
    else:
        _SEQ = itertools.count(seq + 1)


class TimestampKind(enum.Enum):
    """How a stream's tuples acquire their timestamps (paper Section 5).

    EXTERNAL
        The producing application stamped the tuple before it entered the
        DSMS.  Ordering holds per stream but cross-stream skew is bounded
        only by an application-level constant ``delta``.
    INTERNAL
        The DSMS stamps the tuple with the system (virtual) clock when it
        enters an input buffer.
    LATENT
        The tuple is unstamped; any operator that requires a timestamp stamps
        it with the clock on first touch.  Latent streams never idle-wait.
    """

    EXTERNAL = "external"
    INTERNAL = "internal"
    LATENT = "latent"


@dataclass(frozen=True, slots=True)
class StreamElement:
    """Common base for everything that travels through a stream buffer.

    Attributes:
        ts: The element's timestamp in stream time, or :data:`LATENT_TS`.
        seq: A globally unique, monotonically increasing sequence number used
            only to break ties deterministically; it has no semantic meaning.
    """

    ts: float
    seq: int = field(default_factory=lambda: next(_SEQ))

    @property
    def is_punctuation(self) -> bool:
        raise NotImplementedError

    @property
    def is_feedback(self) -> bool:
        """True for upstream-flowing feedback punctuation (never buffered)."""
        return False

    @property
    def is_latent(self) -> bool:
        """True when the element has not been stamped yet."""
        return self.ts == LATENT_TS


@dataclass(frozen=True, slots=True)
class DataTuple(StreamElement):
    """A data tuple: a payload record plus timestamp metadata.

    Attributes:
        payload: The record carried by the tuple.  Treated as opaque by the
            engine; operators interpret it through their stream's schema.
        kind: How the timestamp was (or will be) assigned.
        arrival_ts: Virtual-clock time at which the tuple entered the DSMS.
            Used by sinks to compute output latency; ``nan`` until set by a
            source node.
    """

    payload: Mapping[str, Any] | tuple | Any = None
    kind: TimestampKind = TimestampKind.INTERNAL
    arrival_ts: float = float("nan")

    @property
    def is_punctuation(self) -> bool:
        return False

    def stamped(self, ts: float, kind: TimestampKind | None = None) -> "DataTuple":
        """Return a copy of this tuple carrying timestamp ``ts``.

        Used by source nodes (internal timestamping on entry) and by
        operators stamping latent tuples on the fly.
        """
        return replace(self, ts=ts, kind=kind if kind is not None else self.kind)

    def with_arrival(self, arrival_ts: float) -> "DataTuple":
        """Return a copy recording when the tuple entered the DSMS."""
        return replace(self, arrival_ts=arrival_ts)

    def with_payload(self, payload: Any) -> "DataTuple":
        """Return a copy carrying a new payload but the same timestamps."""
        return replace(self, payload=payload)


@dataclass(frozen=True, slots=True)
class Punctuation(StreamElement):
    """A punctuation tuple carrying an Enabling Time-Stamp.

    A punctuation with timestamp ``ts`` asserts that no future element on the
    carrying stream will have a timestamp smaller than ``ts``.

    Attributes:
        origin: Name of the source node (or operator) that generated the
            punctuation; useful for tracing propagation in tests and debug
            output.
        periodic: True when generated by a periodic heartbeat injector
            (scenario B), False when generated on demand (scenario C) or by
            an operator propagating ETS downstream.
    """

    origin: str = ""
    periodic: bool = False

    @property
    def is_punctuation(self) -> bool:
        return True

    def reformatted(self, origin: str | None = None) -> "Punctuation":
        """Return a copy, optionally re-attributed to a downstream operator.

        Non-IWP operators pass punctuation through "unchanged except for
        possible reformatting" (paper Section 4.2); schema-changing operators
        use this to keep provenance readable.
        """
        if origin is None:
            return self
        return replace(self, origin=origin)


@dataclass(frozen=True, slots=True)
class FeedbackPunctuation(StreamElement):
    """An upstream-flowing punctuation carrying typed feedback assertions.

    Ordinary punctuation asserts a *temporal* property about the future of a
    stream ("no element below ``ts`` will follow").  Feedback punctuation —
    after Fernández-Moctezuma & Tufte — asserts an *operational* property
    about the downstream present: how congested the consumers of a stream
    are right now.  It travels *predecessor-ward* along the same edges the
    backtrack/on-demand-ETS walk uses, but it never enters a stream buffer:
    propagation is a direct reverse-topological delivery to
    :meth:`Operator.on_feedback`, so the ordered-stream invariant and the
    data path are untouched by construction.

    ``ts`` is the virtual-clock instant of the observation; ``seq`` breaks
    ties like any stream element.

    Attributes:
        origin: Name of the emitting component (a controller, sink, or
            sharded aggregator) for tracing.
        pressure: Normalized congestion in ``[0, 1]``: 0 means relaxed,
            1 means the high watermark (or worse) has been reached.  A
            feedback wave with ``pressure == 0.0`` is a *relief* assertion
            telling reactions to unwind.
        buffer_depth: Total buffered elements observed across the graph.
        sink_latency: Worst observed mean sink latency (stream seconds).
        frontier_lag: Gap between the newest source watermark and the
            oldest operator frontier — how far behind the slowest path is.
        drop_budget: Suggested shed probability in ``[0, 1]`` for
            load-shedding operators; 0 requests no shedding.
    """

    origin: str = ""
    pressure: float = 0.0
    buffer_depth: int = 0
    sink_latency: float = 0.0
    frontier_lag: float = 0.0
    drop_budget: float = 0.0

    @property
    def is_punctuation(self) -> bool:
        return False

    @property
    def is_feedback(self) -> bool:
        return True

    @property
    def is_relief(self) -> bool:
        """True when this wave asks reactions to unwind (pressure zero)."""
        return self.pressure <= 0.0

    def combined_with(self, other: "FeedbackPunctuation") -> "FeedbackPunctuation":
        """Element-wise max-combine with another assertion.

        The per-operator combine rule: an operator feeding several
        successors reacts to the *worst* pressure any of them reports, so
        assertions merge by taking the maximum of every field (and the
        newest observation instant).
        """
        if other.pressure > self.pressure:
            base, extra = other, self
        else:
            base, extra = self, other
        return replace(
            base,
            ts=max(base.ts, extra.ts),
            buffer_depth=max(base.buffer_depth, extra.buffer_depth),
            sink_latency=max(base.sink_latency, extra.sink_latency),
            frontier_lag=max(base.frontier_lag, extra.frontier_lag),
            drop_budget=max(base.drop_budget, extra.drop_budget),
        )

    def reattributed(self, origin: str) -> "FeedbackPunctuation":
        """Return a copy re-attributed to a forwarding operator."""
        return replace(self, origin=origin)


def is_data(element: StreamElement) -> bool:
    """True when ``element`` is a data tuple."""
    return not (element.is_punctuation or element.is_feedback)


def is_punctuation(element: StreamElement) -> bool:
    """True when ``element`` is a punctuation tuple."""
    return element.is_punctuation


def is_feedback(element: StreamElement) -> bool:
    """True when ``element`` is an upstream feedback punctuation."""
    return element.is_feedback
