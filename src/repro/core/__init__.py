"""Core DSMS: tuples, buffers, operators, query graphs, execution, ETS."""

from .buffers import BufferRegistry, StreamBuffer, TSMRegister
from .errors import (
    ExecutionError,
    GraphError,
    InvariantViolation,
    PolicyError,
    QueryLanguageError,
    ReproError,
    SchemaError,
    TimestampError,
    WorkloadError,
)
from .ets import (
    AdaptiveHeartbeatSchedule,
    EtsPolicy,
    NoEts,
    OnDemandEts,
    PeriodicEtsSchedule,
)
from .execution import EngineStats, ExecutionEngine
from .graph import QueryGraph, chain_joins
from .schema import Field, Schema
from .timestamps import InternalClockEts, SkewBoundEts, default_generator_for
from .tuples import (
    LATENT_TS,
    DataTuple,
    Punctuation,
    StreamElement,
    TimestampKind,
    is_data,
    is_punctuation,
)
from .windows import CountWindow, TimeWindow, WindowSpec

__all__ = [
    "AdaptiveHeartbeatSchedule",
    "BufferRegistry",
    "CountWindow",
    "DataTuple",
    "EngineStats",
    "EtsPolicy",
    "ExecutionEngine",
    "ExecutionError",
    "Field",
    "GraphError",
    "InternalClockEts",
    "InvariantViolation",
    "LATENT_TS",
    "NoEts",
    "OnDemandEts",
    "PeriodicEtsSchedule",
    "PolicyError",
    "Punctuation",
    "QueryGraph",
    "QueryLanguageError",
    "ReproError",
    "Schema",
    "SchemaError",
    "SkewBoundEts",
    "StreamBuffer",
    "StreamElement",
    "TSMRegister",
    "TimeWindow",
    "TimestampError",
    "TimestampKind",
    "WindowSpec",
    "WorkloadError",
    "chain_joins",
    "default_generator_for",
    "is_data",
    "is_punctuation",
]
