"""Struct-of-arrays record batches for the columnar execution path.

The micro-batched engine (``batch_size > 1``) amortizes *dispatch*: one
``execute_batch`` call consumes a run of tuples instead of one.  But the run
itself is still a Python list of :class:`~repro.core.tuples.DataTuple`
objects, and every stateless operator pays per-tuple costs that batching
cannot remove — a ``dataclasses.replace`` per projection, a buffer
``popleft``/``append`` per hop, a bound-method call per predicate.  This
module removes those costs with the classic columnar design: a
:class:`ColumnarBlock` holds the batch as parallel arrays (timestamps,
sequence numbers, timestamp kinds, arrival stamps, payloads) plus a
**selection vector** of live row indices.  Operators that understand blocks
transform the *arrays* — a selection narrows the selection vector without
copying anything, a projection rewrites only the payload column — and whole
blocks travel through stream buffers as single entries.

Two invariants keep the block path byte-identical to scalar execution:

* **Blocks hold only data tuples.**  Punctuation never enters a block: it is
  a batch boundary (exactly as in the micro-batched path), so ETS
  information always reaches the NOS rules as individual elements.
* **Rows are timestamp-ordered** (latent rows, which carry no timestamp,
  may appear anywhere).  Blocks are built from runs drained out of ordered
  buffers and every transform preserves row order, so a buffer receiving a
  block needs one order check instead of one per row.

Materializing a row rebuilds the exact original tuple — same payload object,
same ``seq``, same timestamp kind — which is what lets stateful consumers
(join, reorder) that do not understand blocks simply *explode* a block back
into scalar elements and proceed unchanged (see
:meth:`repro.core.buffers.StreamBuffer.peek`).

numpy (when importable) accelerates structured field predicates via
:class:`FieldPredicate`; everything else is pure Python, and the module
degrades to pure Python wholesale when numpy is absent or disabled with
:func:`set_numpy`.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Iterator, Sequence

from .tuples import LATENT_TS, DataTuple, TimestampKind

try:  # pragma: no cover - exercised via both branches in the bench
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None

__all__ = [
    "ColumnarBlock",
    "FieldPredicate",
    "numpy_available",
    "numpy_enabled",
    "set_numpy",
]

_numpy_enabled = _np is not None


def numpy_available() -> bool:
    """True when numpy could be imported at all."""
    return _np is not None


def numpy_enabled() -> bool:
    """True when the vectorized (numpy) fast paths are currently in force."""
    return _numpy_enabled and _np is not None


def set_numpy(enabled: bool) -> bool:
    """Toggle the numpy fast paths; returns the previous setting.

    The pure-Python fallback is always semantically identical — this switch
    exists so the benchmark (and tests) can measure both rows on the same
    interpreter.
    """
    global _numpy_enabled
    previous = _numpy_enabled
    _numpy_enabled = bool(enabled) and _np is not None
    return previous


class ColumnarBlock:
    """A struct-of-arrays batch of data tuples with a selection vector.

    The five parallel arrays hold one entry per *physical* row; the
    ``selection`` list holds the indices of the rows that are still live
    (``None`` means "all rows").  Filtering therefore never copies data: it
    produces a new block sharing the same arrays with a narrower selection.
    Payload-rewriting transforms (map, project) compact the block — gather
    the selected rows of every array — because they must build a new payload
    column anyway.

    Blocks are immutable by convention once pushed into a buffer: operators
    build new blocks (or new selections over shared arrays) instead of
    mutating inputs, which makes fan-out (one block pushed to several output
    buffers) safe without copies.
    """

    __slots__ = ("ts", "seq", "kind", "arrival", "payloads", "selection")

    def __init__(self, ts: list[float], seq: list[int],
                 kind: list[TimestampKind], arrival: list[float],
                 payloads: list[Any],
                 selection: list[int] | None = None) -> None:
        self.ts = ts
        self.seq = seq
        self.kind = kind
        self.arrival = arrival
        self.payloads = payloads
        self.selection = selection

    # ------------------------------------------------------------------ #
    # Construction / materialization

    @classmethod
    def from_tuples(cls, tuples: Sequence[DataTuple]) -> "ColumnarBlock":
        """Decompose a run of data tuples into column arrays.

        The run must already be in stream order (non-latent timestamps
        non-decreasing) — true for anything drained out of a
        :class:`~repro.core.buffers.StreamBuffer` or emitted by an operator
        preserving input order.
        """
        return cls(
            [t.ts for t in tuples],
            [t.seq for t in tuples],
            [t.kind for t in tuples],
            [t.arrival_ts for t in tuples],
            [t.payload for t in tuples],
        )

    def to_tuples(self) -> list[DataTuple]:
        """Rebuild the selected rows as the exact original data tuples.

        Round-trip identity: ``ColumnarBlock.from_tuples(run).to_tuples()``
        equals ``run`` field for field (``seq`` included — materialization
        never draws fresh sequence numbers, so tie-breaking downstream is
        unchanged).
        """
        ts, seq, kind = self.ts, self.seq, self.kind
        arrival, payloads = self.arrival, self.payloads
        indices = self.selection
        if indices is None:
            indices = range(len(ts))
        return [DataTuple(ts=ts[i], seq=seq[i], payload=payloads[i],
                          kind=kind[i], arrival_ts=arrival[i])
                for i in indices]

    def row(self, position: int) -> DataTuple:
        """Materialize the row at selected *position* (not physical index)."""
        i = self.selection[position] if self.selection is not None else position
        return DataTuple(ts=self.ts[i], seq=self.seq[i],
                         payload=self.payloads[i], kind=self.kind[i],
                         arrival_ts=self.arrival[i])

    # ------------------------------------------------------------------ #
    # Introspection

    @property
    def count(self) -> int:
        """Number of live (selected) rows."""
        if self.selection is not None:
            return len(self.selection)
        return len(self.ts)

    def __len__(self) -> int:
        return self.count

    def indices(self) -> Iterable[int]:
        """Physical indices of the live rows, in row order."""
        if self.selection is not None:
            return self.selection
        return range(len(self.ts))

    def iter_payloads(self) -> Iterator[Any]:
        """The payload column of the live rows, in row order."""
        if self.selection is None:
            return iter(self.payloads)
        payloads = self.payloads
        return (payloads[i] for i in self.selection)

    def iter_arrival(self) -> Iterator[float]:
        """The arrival-stamp column of the live rows, in row order."""
        if self.selection is None:
            return iter(self.arrival)
        arrival = self.arrival
        return (arrival[i] for i in self.selection)

    @property
    def head_ts(self) -> float:
        """Timestamp of the first live row (may be :data:`LATENT_TS`)."""
        i = self.selection[0] if self.selection is not None else 0
        return self.ts[i]

    def first_ts(self) -> float:
        """Smallest (= first, rows being ordered) non-latent timestamp,
        or :data:`LATENT_TS` when every row is latent."""
        ts = self.ts
        for i in self.indices():
            if ts[i] != LATENT_TS:
                return ts[i]
        return LATENT_TS

    def last_ts(self) -> float:
        """Largest (= last) non-latent timestamp, or :data:`LATENT_TS`."""
        ts = self.ts
        sel = self.selection
        if sel is None:
            for i in range(len(ts) - 1, -1, -1):
                if ts[i] != LATENT_TS:
                    return ts[i]
        else:
            for j in range(len(sel) - 1, -1, -1):
                if ts[sel[j]] != LATENT_TS:
                    return ts[sel[j]]
        return LATENT_TS

    def column(self, field: str) -> list[Any]:
        """``payload[field]`` for every live row (payloads must be mappings)."""
        return [p[field] for p in self.iter_payloads()]

    # ------------------------------------------------------------------ #
    # Splitting (drain limits and timestamp gates)

    def _positions(self) -> list[int]:
        if self.selection is not None:
            return self.selection
        return list(range(len(self.ts)))

    def split_at(self, n: int) -> tuple["ColumnarBlock", "ColumnarBlock"]:
        """Split into (first ``n`` live rows, the rest); arrays are shared."""
        sel = self._positions()
        return (
            ColumnarBlock(self.ts, self.seq, self.kind, self.arrival,
                          self.payloads, sel[:n]),
            ColumnarBlock(self.ts, self.seq, self.kind, self.arrival,
                          self.payloads, sel[n:]),
        )

    def split_below(self, max_ts: float, *,
                    inclusive: bool = False) -> tuple["ColumnarBlock",
                                                      "ColumnarBlock | None"]:
        """Split before the first row stamped at or above ``max_ts``.

        Mirrors :meth:`StreamBuffer.drain_batch`'s ``max_ts`` rule: latent
        rows never stop a run, so they stay with the head part.  Returns
        ``(head, tail)`` with ``tail is None`` when nothing was cut off.

        With ``inclusive=True`` the cut moves past rows stamped exactly
        ``max_ts`` (head holds ``ts <= max_ts``) — the reorder operator's
        slack-bound eviction is an inclusive threshold.
        """
        ts = self.ts
        sel = self._positions()
        for pos, i in enumerate(sel):
            t = ts[i]
            if t != LATENT_TS and (t > max_ts if inclusive else t >= max_ts):
                return (
                    ColumnarBlock(self.ts, self.seq, self.kind, self.arrival,
                                  self.payloads, sel[:pos]),
                    ColumnarBlock(self.ts, self.seq, self.kind, self.arrival,
                                  self.payloads, sel[pos:]),
                )
        return self, None

    # ------------------------------------------------------------------ #
    # Transforms

    def filter(self, predicate: Callable[[Any], bool]) -> "ColumnarBlock":
        """Narrow the selection to rows whose payload passes ``predicate``.

        One predicate call per live row, in row order (predicates may be
        stateful); no arrays are copied.
        """
        payloads = self.payloads
        if self.selection is None:
            sel = [i for i in range(len(payloads)) if predicate(payloads[i])]
        else:
            sel = [i for i in self.selection if predicate(payloads[i])]
        return ColumnarBlock(self.ts, self.seq, self.kind, self.arrival,
                             payloads, sel)

    def with_selection(self, selection: list[int]) -> "ColumnarBlock":
        """A view of the same arrays with a different selection vector."""
        return ColumnarBlock(self.ts, self.seq, self.kind, self.arrival,
                             self.payloads, selection)

    def with_payloads(self, payloads: list[Any]) -> "ColumnarBlock":
        """Compact the selected rows and attach a rewritten payload column.

        ``payloads`` must hold one entry per live row, in row order.
        """
        sel = self.selection
        if sel is None:
            if len(payloads) != len(self.ts):
                raise ValueError(
                    f"payload column has {len(payloads)} entries for "
                    f"{len(self.ts)} rows")
            return ColumnarBlock(self.ts, self.seq, self.kind, self.arrival,
                                 payloads)
        if len(payloads) != len(sel):
            raise ValueError(
                f"payload column has {len(payloads)} entries for "
                f"{len(sel)} rows")
        ts, seq, kind, arrival = self.ts, self.seq, self.kind, self.arrival
        return ColumnarBlock([ts[i] for i in sel], [seq[i] for i in sel],
                             [kind[i] for i in sel], [arrival[i] for i in sel],
                             payloads)

    def map_payloads(self, fn: Callable[[Any], Any]) -> "ColumnarBlock":
        """Apply ``fn`` to every live payload (row order), compacting."""
        return self.with_payloads([fn(p) for p in self.iter_payloads()])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnarBlock(rows={self.count}/{len(self.ts)})"


# ---------------------------------------------------------------------- #
# Structured (vectorizable) predicates

_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class FieldPredicate:
    """A predicate of the form ``payload[field] <op> value``.

    Behaves as a plain callable (so the scalar and micro-batched paths use
    it unchanged), but carries enough structure for the columnar path to
    evaluate it in one vectorized pass over the field column when numpy is
    enabled.  Construct via the classmethods::

        Select("keep", FieldPredicate.lt("value", 0.95))
    """

    __slots__ = ("field", "op", "value", "_fn")

    def __init__(self, field: str, op: str, value: Any) -> None:
        if op not in _OPS:
            raise ValueError(f"unsupported FieldPredicate op {op!r}")
        self.field = field
        self.op = op
        self.value = value
        self._fn = _OPS[op]

    # Constructors ----------------------------------------------------- #

    @classmethod
    def lt(cls, field: str, value: Any) -> "FieldPredicate":
        return cls(field, "<", value)

    @classmethod
    def le(cls, field: str, value: Any) -> "FieldPredicate":
        return cls(field, "<=", value)

    @classmethod
    def gt(cls, field: str, value: Any) -> "FieldPredicate":
        return cls(field, ">", value)

    @classmethod
    def ge(cls, field: str, value: Any) -> "FieldPredicate":
        return cls(field, ">=", value)

    @classmethod
    def eq(cls, field: str, value: Any) -> "FieldPredicate":
        return cls(field, "==", value)

    @classmethod
    def ne(cls, field: str, value: Any) -> "FieldPredicate":
        return cls(field, "!=", value)

    # Evaluation ------------------------------------------------------- #

    def __call__(self, payload: Any) -> bool:
        return bool(self._fn(payload[self.field], self.value))

    def select_indices(self, block: ColumnarBlock) -> list[int]:
        """Physical indices of the block's rows passing the predicate.

        Vectorized over the field column under numpy; the pure-Python
        branch performs the identical comparisons row by row.
        """
        if numpy_enabled():
            values = _np.asarray(block.column(self.field))
            mask = self._fn(values, self.value)
            hits = _np.nonzero(mask)[0]
            base = block.selection
            if base is None:
                return hits.tolist()
            return [base[i] for i in hits]
        fn, value, field = self._fn, self.value, self.field
        payloads = block.payloads
        if block.selection is None:
            return [i for i in range(len(payloads))
                    if fn(payloads[i][field], value)]
        return [i for i in block.selection if fn(payloads[i][field], value)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FieldPredicate({self.field!r} {self.op} {self.value!r})"
