"""Query graphs: operators (nodes) connected by stream buffers (arcs).

A query graph is a DAG whose nodes are query operators plus source and sink
nodes, and whose arcs are FIFO buffers (paper Section 3).  Each weakly
connected component is a scheduling unit; the execution engine runs one
component at a time.

The graph object owns the :class:`BufferRegistry`, so the "peak total queue
size" metric of Figure 8 covers exactly the buffers of this query.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .buffers import BufferRegistry, StreamBuffer
from .errors import GraphError
from .operators.base import Operator
from .operators.join import WindowJoin
from .operators.sink import SinkNode
from .operators.source import SourceNode
from .tuples import TimestampKind
from .windows import WindowSpec

__all__ = ["QueryGraph", "chain_joins"]


class QueryGraph:
    """A DAG of operators; the unit handed to the execution engine.

    Typical construction::

        g = QueryGraph("monitor")
        s1 = g.add_source("fast")
        s2 = g.add_source("slow")
        f1 = g.add(Select("filter1", predicate))
        f2 = g.add(Select("filter2", predicate))
        u = g.add(Union("union"))
        out = g.add_sink("out")
        g.connect(s1, f1); g.connect(s2, f2)
        g.connect(f1, u); g.connect(f2, u)
        g.connect(u, out)
        g.validate()
    """

    def __init__(self, name: str = "query") -> None:
        self.name = name
        self.registry = BufferRegistry()
        self._operators: dict[str, Operator] = {}
        self._buffers: list[StreamBuffer] = []
        self._validated = False
        #: Live-successor / live-predecessor lookup tables, keyed by
        #: operator name and frozen by :meth:`validate`.  Graph traversals
        #: (cycle check, components, topological order) read these instead
        #: of re-filtering ``op.successors`` / ``op.predecessors`` on every
        #: visit.
        self._succ_table: dict[str, tuple[Operator, ...]] = {}
        self._pred_table: dict[str, tuple[Operator, ...]] = {}

    # ------------------------------------------------------------------ #
    # Construction

    def add(self, operator: Operator) -> Operator:
        """Register ``operator`` as a node of this graph."""
        if operator.name in self._operators:
            raise GraphError(
                f"graph {self.name!r} already has an operator named "
                f"{operator.name!r}"
            )
        self._operators[operator.name] = operator
        self._validated = False
        self._succ_table.clear()
        self._pred_table.clear()
        return operator

    def add_source(self, name: str,
                   timestamp_kind: TimestampKind = TimestampKind.INTERNAL,
                   *, out_of_order: bool = False,
                   output_schema=None,
                   validate_schema: bool = False) -> SourceNode:
        """Create and register a source node."""
        source = SourceNode(name, timestamp_kind, out_of_order=out_of_order,
                            output_schema=output_schema,
                            validate_schema=validate_schema)
        self.add(source)
        return source

    def add_sink(self, name: str, on_output: Callable | None = None,
                 *, keep_outputs: bool = False) -> SinkNode:
        """Create and register a sink node."""
        sink = SinkNode(name, on_output, keep_outputs=keep_outputs)
        self.add(sink)
        return sink

    def connect(self, producer: Operator, consumer: Operator,
                *, enforce_order: bool = True) -> StreamBuffer:
        """Add an arc (a FIFO buffer) from ``producer`` to ``consumer``."""
        for op in (producer, consumer):
            if self._operators.get(op.name) is not op:
                raise GraphError(
                    f"operator {op.name!r} is not part of graph {self.name!r}"
                )
        # Out-of-order sources legitimately push regressing timestamps; a
        # downstream Reorder operator restores the invariant.
        if getattr(producer, "out_of_order", False):
            enforce_order = False
        buf = StreamBuffer(
            name=f"{producer.name}->{consumer.name}",
            registry=self.registry,
            enforce_order=enforce_order,
            consumer_name=consumer.name,
            consumer_port=len(consumer.inputs),
        )
        producer.attach_output(buf, consumer)
        consumer.attach_input(buf, producer)
        self._buffers.append(buf)
        self._validated = False
        self._succ_table.clear()
        self._pred_table.clear()
        return buf

    # ------------------------------------------------------------------ #
    # Introspection

    def __contains__(self, name: str) -> bool:
        return name in self._operators

    def __getitem__(self, name: str) -> Operator:
        try:
            return self._operators[name]
        except KeyError:
            raise GraphError(
                f"graph {self.name!r} has no operator {name!r}"
            ) from None

    @property
    def operators(self) -> list[Operator]:
        return list(self._operators.values())

    @property
    def buffers(self) -> list[StreamBuffer]:
        return list(self._buffers)

    def sources(self) -> list[SourceNode]:
        return [op for op in self._operators.values()
                if isinstance(op, SourceNode)]

    def sinks(self) -> list[SinkNode]:
        return [op for op in self._operators.values()
                if isinstance(op, SinkNode)]

    def iwp_operators(self) -> list[Operator]:
        """Operators subject to idle-waiting (union, join)."""
        return [op for op in self._operators.values() if op.is_iwp]

    def total_buffered(self) -> int:
        """Current total number of elements across the graph's buffers."""
        return self.registry.total

    # ------------------------------------------------------------------ #
    # Validation and structure

    def validate(self) -> "QueryGraph":
        """Check wiring, acyclicity, and terminal roles; returns self."""
        if not self._operators:
            raise GraphError(f"graph {self.name!r} is empty")
        for op in self._operators.values():
            op.validate_wiring()
            if isinstance(op, SourceNode) and op.inputs:
                raise GraphError(f"source {op.name!r} must not have inputs")
            if not isinstance(op, SourceNode) and not op.inputs:
                raise GraphError(
                    f"operator {op.name!r} has no inputs and is not a source"
                )
            if isinstance(op, SinkNode) and op.outputs:
                raise GraphError(f"sink {op.name!r} must not have outputs")
            if not isinstance(op, SinkNode) and not op.outputs:
                raise GraphError(
                    f"operator {op.name!r} has no outputs and is not a sink"
                )
        self._rebuild_tables()
        self._check_acyclic()
        self._validated = True
        return self

    def _rebuild_tables(self) -> None:
        """Freeze the successor/predecessor lookup tables (and each
        operator's Forward-rule ``forward_pairs``) from the current wiring."""
        self._succ_table = {}
        self._pred_table = {}
        for name, op in self._operators.items():
            op.rebuild_forward_pairs()
            self._succ_table[name] = tuple(
                s for s in op.successors if s is not None)
            self._pred_table[name] = tuple(
                p for p in op.predecessors if p is not None)

    def live_successors(self, op: Operator) -> tuple[Operator, ...]:
        """Non-None successors of ``op`` (precomputed after validation)."""
        table = self._succ_table.get(op.name)
        if table is None:
            return tuple(s for s in op.successors if s is not None)
        return table

    def live_predecessors(self, op: Operator) -> tuple[Operator, ...]:
        """Non-None predecessors of ``op`` (precomputed after validation)."""
        table = self._pred_table.get(op.name)
        if table is None:
            return tuple(p for p in op.predecessors if p is not None)
        return table

    @property
    def is_validated(self) -> bool:
        return self._validated

    def _check_acyclic(self) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._operators}

        def visit(op: Operator) -> None:
            color[op.name] = GREY
            stack = [(op, iter(self.live_successors(op)))]
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    c = color[succ.name]
                    if c == GREY:
                        raise GraphError(
                            f"graph {self.name!r} has a cycle through "
                            f"{succ.name!r}"
                        )
                    if c == WHITE:
                        color[succ.name] = GREY
                        stack.append((succ, iter(self.live_successors(succ))))
                        advanced = True
                        break
                if not advanced:
                    color[node.name] = BLACK
                    stack.pop()

        for op in self._operators.values():
            if color[op.name] == WHITE:
                visit(op)

    def components(self) -> list[list[Operator]]:
        """Weakly connected components — the DSMS scheduling units."""
        parent: dict[str, str] = {name: name for name in self._operators}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for op in self._operators.values():
            for succ in self.live_successors(op):
                union(op.name, succ.name)
        groups: dict[str, list[Operator]] = {}
        for name, op in self._operators.items():
            groups.setdefault(find(name), []).append(op)
        return list(groups.values())

    def topological_order(self) -> list[Operator]:
        """Operators in a producer-before-consumer order."""
        indegree = {name: len(self.live_predecessors(op))
                    for name, op in self._operators.items()}
        ready = [op for name, op in self._operators.items() if not indegree[name]]
        order: list[Operator] = []
        while ready:
            op = ready.pop()
            order.append(op)
            for succ in self.live_successors(op):
                indegree[succ.name] -= 1
                if not indegree[succ.name]:
                    ready.append(succ)
        if len(order) != len(self._operators):
            raise GraphError(f"graph {self.name!r} is cyclic")
        return order

    def describe(self) -> str:
        """Multi-line human-readable dump of nodes and arcs."""
        lines = [f"QueryGraph {self.name!r}:"]
        for op in self.topological_order():
            succs = ", ".join(s.name for s in op.successors if s is not None)
            role = type(op).__name__
            lines.append(f"  {op.name} [{role}] -> {succs or '(terminal)'}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the query graph.

        Sources render as houses, sinks as inverted houses, IWP operators
        (the paper's protagonists) as double circles, everything else as
        boxes.  Arc labels show current buffer occupancy, so a dump taken
        mid-run doubles as a queue-pressure snapshot.
        """
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for op in self._operators.values():
            if isinstance(op, SourceNode):
                shape = "house"
            elif isinstance(op, SinkNode):
                shape = "invhouse"
            elif op.is_iwp:
                shape = "doublecircle"
            else:
                shape = "box"
            label = f"{op.name}\\n{type(op).__name__}"
            lines.append(f'  "{op.name}" [shape={shape}, label="{label}"];')
        for op in self._operators.values():
            for buf, succ in zip(op.outputs, op.successors):
                if succ is None:
                    continue
                lines.append(
                    f'  "{op.name}" -> "{succ.name}" [label="{len(buf)}"];'
                )
        lines.append("}")
        return "\n".join(lines)


def chain_joins(graph: QueryGraph, name: str, inputs: Iterable[Operator],
                window: WindowSpec, **join_kwargs) -> Operator:
    """Build a left-deep cascade of binary window joins over ``inputs``.

    The paper omits multi-way joins "whose treatment is however similar to
    that of binary joins"; this helper provides them compositionally.
    Returns the root (final) join operator; the caller connects it onward.
    """
    ops = list(inputs)
    if len(ops) < 2:
        raise GraphError("chain_joins needs at least two inputs")
    left = ops[0]
    for i, right in enumerate(ops[1:], start=1):
        join = WindowJoin(f"{name}_{i}" if len(ops) > 2 else name,
                          window, **join_kwargs)
        graph.add(join)
        graph.connect(left, join)
        graph.connect(right, join)
        left = join
    return left
