"""The query-graph execution engine (paper Sections 3–4).

The engine implements the two-step cycle of paper Fig. 3 — *execute the
current operator, then select the next operator* — with the depth-first
Next-Operator-Selection (NOS) rules:

* **Forward**: if ``yield`` (the operator's output buffer holds tuples),
  the next operator is the successor consuming that buffer;
* **Encore**: else if ``more`` (processable input remains), re-execute the
  same operator;
* **Backtrack**: else move to the predecessor — for multi-input operators,
  to ``pred_j`` where *j* is the input whose emptiness gates progress — and
  repeat the NOS step there *without* executing.

When backtracking reaches a source node whose buffer is empty, the engine
consults its :class:`~repro.core.ets.EtsPolicy`.  Under
:class:`~repro.core.ets.OnDemandEts` the source injects a punctuation
carrying a fresh ETS, and the very next Forward step carries it down the
path that was just backtracked — this integration of timestamp management
with the execution model is the paper's core contribution.

The engine is also the simulation's CPU: every step charges simulated time
through the :class:`~repro.sim.cost.CostModel`, and a ``deliver_due`` hook
lets the kernel feed arrivals that became due while the engine was busy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Callable, Iterable

from ..obs.bus import EventBus, Observer
from .config import EngineConfig
from .errors import ExecutionError
from .ets import EtsPolicy, NoEts
from .graph import QueryGraph
from .operators.base import BatchResult, OpContext, Operator, StepResult
from .operators.source import SourceNode

__all__ = ["EngineStats", "ExecutionEngine"]


@dataclass(slots=True)
class EngineStats:
    """Counters describing everything the engine has done so far.

    Attributes:
        rounds: Wake-up rounds executed.
        steps: Operator execution steps performed.
        data_steps / punct_steps: Steps that consumed a data tuple vs a
            punctuation tuple.
        probes: Window tuples examined across all joins (bucket-sized under
            indexed equality joins, window-sized under scan joins).
        probes_emitted: Examined candidates that passed the join condition
            and produced an output tuple.  The examined-vs-emitted gap is
            the wasted probe work a hash index removes.
        ets_offers: Times a stalled source consulted the ETS policy.
        ets_injected: Times the policy actually injected a punctuation.
        busy_time: Simulated CPU seconds consumed by operator steps.
        degradations / resyncs: Sources switched to fallback heartbeats by
            the stall detector, and switched back on recovery.
        fallback_heartbeats: Punctuation injected by fallback trains.
        quarantine_dropped / quarantine_clamped: Regressed-timestamp tuples
            absorbed by the quarantine policy instead of crashing ingest.
        invariant_violations: Violations the invariant monitor recorded in
            degrade mode (halt mode raises instead of counting here).
        blocks / block_rows: Columnar execution steps taken and the rows
            they consumed (block mode only).
        block_fallbacks: Block-mode steps routed through the scalar/batched
            path because the operator does not support blocks.
    """

    rounds: int = 0
    steps: int = 0
    data_steps: int = 0
    punct_steps: int = 0
    probes: int = 0
    probes_emitted: int = 0
    ets_offers: int = 0
    ets_injected: int = 0
    busy_time: float = 0.0
    emitted_data: int = 0
    emitted_punctuation: int = 0
    degradations: int = 0
    resyncs: int = 0
    fallback_heartbeats: int = 0
    quarantine_dropped: int = 0
    quarantine_clamped: int = 0
    invariant_violations: int = 0
    blocks: int = 0
    block_rows: int = 0
    block_fallbacks: int = 0
    per_operator_steps: dict[str, int] = field(default_factory=dict)
    block_fallbacks_by_operator: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Every counter under its canonical ``snake_case`` name.

        This is the one serialized shape the metrics registry, the
        exporters, and the report helpers consume.
        """
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    def snapshot_state(self) -> dict:
        """Versioned snapshot of every counter (checkpointing)."""
        state = self.as_dict()
        state["per_operator_steps"] = dict(self.per_operator_steps)
        state["block_fallbacks_by_operator"] = dict(
            self.block_fallbacks_by_operator)
        state["version"] = 1
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(f"unsupported EngineStats state: {state!r}")
        for f in dataclass_fields(self):
            if f.name == "per_operator_steps":
                self.per_operator_steps = dict(state[f.name])
            elif f.name == "block_fallbacks_by_operator":
                # Postdates snapshot version 1; default for old checkpoints.
                self.block_fallbacks_by_operator = dict(state.get(f.name, {}))
            elif f.name in ("blocks", "block_rows", "block_fallbacks"):
                # Columnar counters postdate snapshot version 1; default
                # them so pre-columnar checkpoints keep restoring.
                setattr(self, f.name, state.get(f.name, 0))
            else:
                setattr(self, f.name, state[f.name])


class ExecutionEngine:
    """Single-threaded DFS executor for one query graph.

    Args:
        graph: A validated (or validatable) :class:`QueryGraph`.
        clock: The virtual clock; advanced by the cost model per step.
        cost_model: CPU pricing; None means free (purely logical execution).
        ets_policy: What stalled sources do (scenarios A/B use
            :class:`NoEts`; scenario C uses :class:`OnDemandEts`).
        idle_tracker: Optional :class:`~repro.metrics.idle.IdleTracker`
            refreshed at every state change the engine causes.
        deliver_due: Kernel hook invoked with the current time between steps
            so arrivals that became due while the engine was busy enter
            their buffers at the right moment.
        offer_ets_always: When False (default), the ETS policy is consulted
            only while some IWP operator is idle-waiting on pending *data* —
            ETS exists to reactivate idle-waiting operators, and generating
            one with nothing to unblock is pure overhead.  Set True for the
            fidelity ablation where every dead-ended backtrack offers.
        batch_size: Micro-batch width.  1 (the default) is the paper's
            tuple-at-a-time execution.  For N > 1 the Encore rule consumes a
            whole run of up to N elements per execution step through
            :meth:`Operator.execute_batch` — runs never cross a punctuation,
            and the cost model still charges simulated CPU per tuple, so
            batching changes wall-clock throughput, not ETS semantics.
        block_mode: Columnar execution.  Operators advertising
            :attr:`Operator.supports_blocks` consume and produce
            struct-of-arrays :class:`~repro.core.columnar.ColumnarBlock`
            runs (up to ``batch_size`` rows per step) instead of tuple
            lists; all other operators fall back to
            :meth:`Operator.execute_batch` with head blocks exploded lazily
            by the buffer, so output stays byte-identical to the scalar
            engine.  Block mode implies batching: with ``batch_size == 1``
            blocks are single-row and pure overhead, so pick a real batch
            size (the :class:`~repro.api.Pipeline` default is 64).
        monitor: Optional :class:`~repro.faults.monitors.InvariantMonitor`
            (already installed on the graph); its per-round checks run at
            the end of every wake-up, and degrade-mode violations are
            counted into :attr:`EngineStats.invariant_violations`.
        observers: Instrumentation observers (see :mod:`repro.obs`).  When
            empty or None the engine stores no event bus at all and every
            emission site reduces to one ``is None`` test — the zero-
            overhead fast path guarded by ``bench_throughput.py``.
        max_steps_per_round: Safety valve for logical-mode loops; None means
            unbounded (the cost model plus event horizon bound real runs).
        config: Optional :class:`~repro.core.config.EngineConfig` supplying
            defaults for the shared knobs (batch_size, block_mode,
            checkpoint_every, observers, feedback, ets_policy,
            max_steps_per_round).  Explicit keyword arguments win.
    """

    def __init__(self, graph: QueryGraph, clock, *, cost_model=None,
                 ets_policy: EtsPolicy | None = None,
                 idle_tracker=None,
                 deliver_due: Callable[[float], None] | None = None,
                 offer_ets_always: bool = False,
                 batch_size: int = 1,
                 block_mode: bool = False,
                 monitor=None,
                 observers: Iterable[Observer] | None = None,
                 max_steps_per_round: int | None = None,
                 checkpoint_every: int | None = None,
                 feedback=None,
                 config: EngineConfig | None = None) -> None:
        if config is not None:
            knobs = config.resolve(
                dict(batch_size=batch_size, block_mode=block_mode,
                     checkpoint_every=checkpoint_every,
                     max_steps_per_round=max_steps_per_round),
                dict(batch_size=1, block_mode=False, checkpoint_every=None,
                     max_steps_per_round=None))
            batch_size = knobs["batch_size"]
            block_mode = knobs["block_mode"]
            checkpoint_every = knobs["checkpoint_every"]
            max_steps_per_round = knobs["max_steps_per_round"]
            if ets_policy is None:
                ets_policy = config.ets_policy_instance()
            if feedback is None:
                feedback = config.feedback_instance()
            observers = config.resolved_observers(observers) or None
        if not graph.is_validated:
            graph.validate()
        if batch_size < 1:
            raise ExecutionError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ExecutionError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.graph = graph
        self.clock = clock
        self.cost_model = cost_model
        self.ets_policy = ets_policy if ets_policy is not None else NoEts()
        self.idle_tracker = idle_tracker
        self.deliver_due = deliver_due
        self.offer_ets_always = offer_ets_always
        self.batch_size = batch_size
        self.block_mode = block_mode
        self.monitor = monitor
        self.max_steps_per_round = max_steps_per_round
        #: Checkpoint cadence in wake-up rounds; None disables.  The actual
        #: writing is delegated to :attr:`checkpoint_hook` (installed by a
        #: bound :class:`~repro.recovery.RecoveryManager`), keeping the
        #: engine free of any storage dependency.
        self.checkpoint_every = checkpoint_every
        self.checkpoint_hook: Callable[[int], None] | None = None
        #: Optional :class:`~repro.feedback.FeedbackController` sampled at
        #: the end of every wake-up.  None — the default — keeps the engine
        #: entirely feedback-free (and byte-identical to pre-feedback runs).
        self.feedback = feedback
        if feedback is not None:
            feedback.bind(graph, self)
        self.stats = EngineStats()
        self.ctx = OpContext(clock=clock)
        self._round_id = 0
        self._iwp_ops = graph.iwp_operators()
        self._executable = [op for op in graph.operators
                            if not isinstance(op, SourceNode)]
        obs_list = list(observers) if observers is not None else []
        self.bus: EventBus | None = EventBus(obs_list) if obs_list else None
        self._buffer_forward = None
        self._wire_buffer_events()
        if monitor is not None and self.bus is not None \
                and getattr(monitor, "bus", None) is None:
            monitor.bus = self.bus

    def attach_observer(self, observer: Observer) -> "ExecutionEngine":
        """Attach one observer, creating the event bus on first use."""
        if self.bus is None:
            self.bus = EventBus()
        self.bus.attach(observer)
        self._wire_buffer_events()
        if self.monitor is not None \
                and getattr(self.monitor, "bus", None) is None:
            self.monitor.bus = self.bus
        return self

    def _wire_buffer_events(self) -> None:
        """Feed buffer-occupancy changes to the bus iff someone listens."""
        bus = self.bus
        if bus is None or getattr(self, "_buffer_forward", None) is not None \
                or not any(
                    type(o).on_buffer_change is not Observer.on_buffer_change
                    for o in bus.observers):
            return
        registry, clock = self.graph.registry, self.clock

        def forward(total: int) -> None:
            bus.buffer_change(total=total, time=clock.now())

        self._buffer_forward = forward
        registry.add_observer(forward)

    # ------------------------------------------------------------------ #
    # Public API

    @property
    def round_id(self) -> int:
        return self._round_id

    def wakeup(self, entry: SourceNode | Operator | None = None) -> None:
        """Run the engine to quiescence.

        Args:
            entry: Optional hint — the source (or operator) where new input
                just appeared; the DFS starts there.  Work elsewhere in the
                graph is found by scanning once the entry path quiesces.
        """
        self._round_id += 1
        self.stats.rounds += 1
        if self.cost_model is not None:
            self.clock.advance(self.cost_model.scheduling_overhead)
        if self.bus is not None:
            self.bus.wakeup(round_id=self._round_id, time=self.clock.now(),
                            entry=entry.name if entry is not None else None)
        self._refresh_idle()
        steps_before = self.stats.steps

        if entry is not None:
            self._walk(entry)
        while True:
            self._pump_due()
            progressed = False
            for op in self._executable:
                if op.more():
                    progressed = self._walk(op) or progressed
            if not progressed:
                # No operator can execute; give idle-waiting IWP operators a
                # chance to trigger on-demand ETS through backtracking.
                for op in self._iwp_ops:
                    if op.has_pending_data() and not op.more():
                        progressed = self._walk(op) or progressed
            if not progressed:
                break
            if (self.max_steps_per_round is not None
                    and self.stats.steps - steps_before
                    >= self.max_steps_per_round):
                raise ExecutionError(
                    f"engine exceeded {self.max_steps_per_round} steps in one "
                    "round; livelock or undersized budget"
                )
        self._refresh_idle()
        if self.feedback is not None:
            # Feedback sampling happens at quiescence: reactions only turn
            # knobs (drop budgets, slack, admission rates) for *future*
            # input, so the completed round's output is already settled.
            self.feedback.sample(self.clock.now(), self._round_id)
        if self.monitor is not None:
            # Halt-mode monitors raise out of the wake-up; degrade-mode
            # violations are only counted (and traced by the monitor).
            self.stats.invariant_violations += self.monitor.check(
                self.clock.now())
        if self.bus is not None:
            self.bus.quiesce(round_id=self._round_id, time=self.clock.now())
        if (self.checkpoint_every is not None
                and self.checkpoint_hook is not None
                and self._round_id % self.checkpoint_every == 0):
            self.checkpoint_hook(self._round_id)

    def snapshot_state(self) -> dict:
        """Versioned snapshot of engine progress (stats + round counter)."""
        state = {
            "version": 1,
            "round_id": self._round_id,
            "stats": self.stats.snapshot_state(),
        }
        if self.feedback is not None:
            state["feedback"] = self.feedback.snapshot_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(f"unsupported ExecutionEngine state: {state!r}")
        self._round_id = state["round_id"]
        self.stats.restore_state(state["stats"])
        feedback_state = state.get("feedback")
        if feedback_state is not None and self.feedback is not None:
            self.feedback.restore_state(feedback_state)

    def run_to_quiescence(self) -> None:
        """Alias for ``wakeup()`` with no entry hint (useful in tests)."""
        self.wakeup()

    # ------------------------------------------------------------------ #
    # DFS walk implementing the NOS rules

    def _walk(self, start: Operator) -> bool:
        """Run the Execute/Continue cycle from ``start`` until a dead end.

        Returns True when any step executed or any ETS was injected.

        NOS transitions are published to the event bus right here — the
        single walk implementation serves tracing, metrics, and exporters
        alike (the old ``TracingEngine`` duplicated this method and drifted;
        now a missing observer costs one ``is None`` test per decision).
        """
        progress = False
        current = start
        execute = True  # False right after Backtrack ("repeat the NOS step")
        bus = self.bus
        registry = self.graph.registry
        # Operators (and sources) visited without executing since the last
        # buffer mutation.  Re-reaching one means the NOS rules are cycling
        # through a topology where Forward and Backtrack chase each other —
        # a source feeding two consumers (diamond) does exactly that when
        # one arm stalls gated on the other.  Any buffer change invalidates
        # the set: new state means a dead operator may now execute.
        dead: set[int] = set()
        dead_stamp = registry.mutations
        while True:
            self._pump_due()
            if registry.mutations != dead_stamp:
                dead_stamp = registry.mutations
                dead.clear()
            if isinstance(current, SourceNode):
                nxt = self._forward_target(current, dead)
                if nxt is not None:
                    if bus is not None:
                        bus.nos_decision(decision="forward",
                                         operator=nxt.name,
                                         round_id=self._round_id,
                                         time=self.clock.now())
                    current, execute = nxt, True
                    continue
                # Every live successor is dead-ended: this is the genuine
                # stalled-source dead end the ETS hook exists for, even when
                # some output buffer is nonempty (diamond topologies).
                if id(current) in dead:
                    return progress
                dead.add(id(current))
                if self._try_ets(current):
                    progress = True
                    continue  # the injected punctuation enables Forward
                return progress

            # [Execution Step] — in batched mode the Encore rule consumes a
            # whole run (up to batch_size elements, never across the next
            # punctuation) per step instead of a single element.
            if execute and current.more():
                if self.block_mode:
                    if current.supports_blocks:
                        self._step_block(current)
                    else:
                        stats = self.stats
                        stats.block_fallbacks += 1
                        by_op = stats.block_fallbacks_by_operator
                        by_op[current.name] = by_op.get(current.name, 0) + 1
                        self._step_batch(current)
                elif self.batch_size > 1:
                    self._step_batch(current)
                else:
                    self._step(current)
                progress = True
            else:
                # Visited without executing: a second visit in the same
                # buffer state would retrace the identical continuation.
                if id(current) in dead:
                    return progress
                dead.add(id(current))

            # [Continuation Step] — NOS rules
            nxt = self._forward_target(current)
            if nxt is not None:  # Forward
                if bus is not None:
                    bus.nos_decision(decision="forward", operator=nxt.name,
                                     round_id=self._round_id,
                                     time=self.clock.now())
                current, execute = nxt, True
                continue
            if current.more():  # Encore
                if bus is not None:
                    bus.nos_decision(decision="encore", operator=current.name,
                                     round_id=self._round_id,
                                     time=self.clock.now())
                execute = True
                continue
            # Backtrack: to the predecessor feeding the gating input.
            if not current.inputs:
                return progress
            j = current.stalled_input_index()
            pred = current.predecessors[j]
            if pred is None:
                return progress
            if bus is not None:
                bus.nos_decision(decision="backtrack", operator=pred.name,
                                 round_id=self._round_id,
                                 time=self.clock.now(),
                                 detail=f"stalled input {j} of "
                                        f"{current.name}")
            current, execute = pred, False

    @staticmethod
    def _forward_target(op: Operator,
                        dead: set[int] | None = None) -> Operator | None:
        """Forward rule: the successor consuming a nonempty output buffer.

        Iterates the operator's precomputed ``forward_pairs`` table (arcs
        with a live consumer, maintained at wiring time) instead of
        re-zipping and re-filtering the edge lists on every NOS decision.

        ``dead`` (source nodes only) skips successors already visited
        without executing in the current buffer state, so a stalled diamond
        reaches the ETS consultation instead of re-forwarding forever.
        """
        for buf, succ in op.forward_pairs:
            if buf and (dead is None or id(succ) not in dead):
                return succ
        return None

    def _step(self, op: Operator) -> StepResult:
        result = op.execute_step(self.ctx)
        stats = self.stats
        stats.steps += 1
        if result.consumed_punctuation:
            stats.punct_steps += 1
        elif result.consumed is not None:
            stats.data_steps += 1
        stats.probes += result.probes
        stats.probes_emitted += result.probes_emitted
        stats.emitted_data += result.emitted_data
        stats.emitted_punctuation += result.emitted_punctuation
        per_op = stats.per_operator_steps
        per_op[op.name] = per_op.get(op.name, 0) + 1
        cost = 0.0
        if self.cost_model is not None:
            cost = self.cost_model.step_cost(op, result)
            if cost:
                self.clock.advance(cost)
                stats.busy_time += cost
        if self.bus is not None:
            self.bus.step(
                operator=op.name, round_id=self._round_id,
                time=self.clock.now(),
                kind="punct" if result.consumed_punctuation else "data",
                probes=result.probes, probes_emitted=result.probes_emitted,
                emitted_data=result.emitted_data,
                emitted_punctuation=result.emitted_punctuation,
                duration=cost)
        self._refresh_idle()
        return result

    def _step_batch(self, op: Operator) -> BatchResult:
        """One micro-batched execution step: a run of scalar-equivalent steps.

        Stats count scalar-equivalent steps and the cost model charges per
        tuple, so EngineStats and simulated time stay comparable with the
        scalar engine; only the Python dispatch is amortized.
        """
        batch = op.execute_batch(self.ctx, self.batch_size)
        stats = self.stats
        stats.steps += batch.steps
        stats.data_steps += batch.consumed_data
        stats.punct_steps += batch.consumed_punctuation
        stats.probes += batch.probes
        stats.probes_emitted += batch.probes_emitted
        stats.emitted_data += batch.emitted_data
        stats.emitted_punctuation += batch.emitted_punctuation
        per_op = stats.per_operator_steps
        per_op[op.name] = per_op.get(op.name, 0) + batch.steps
        cost = 0.0
        if self.cost_model is not None:
            cost = self.cost_model.batch_cost(op, batch)
            if cost:
                self.clock.advance(cost)
                stats.busy_time += cost
        if self.bus is not None and batch.steps:
            self.bus.step(
                operator=op.name, round_id=self._round_id,
                time=self.clock.now(), kind="batch", steps=batch.steps,
                probes=batch.probes, probes_emitted=batch.probes_emitted,
                emitted_data=batch.emitted_data,
                emitted_punctuation=batch.emitted_punctuation,
                duration=cost)
        self._refresh_idle()
        return batch

    def _step_block(self, op: Operator) -> BatchResult:
        """One columnar execution step: a block of scalar-equivalent steps.

        Accounting mirrors :meth:`_step_batch` — stats count
        scalar-equivalent steps and the cost model charges per tuple — plus
        the columnar counters (``blocks`` / ``block_rows``), so block mode
        changes wall-clock throughput, never simulated time or semantics.
        """
        batch = op.execute_block(self.ctx, self.batch_size)
        stats = self.stats
        stats.steps += batch.steps
        stats.data_steps += batch.consumed_data
        stats.punct_steps += batch.consumed_punctuation
        stats.probes += batch.probes
        stats.probes_emitted += batch.probes_emitted
        stats.emitted_data += batch.emitted_data
        stats.emitted_punctuation += batch.emitted_punctuation
        stats.blocks += 1
        stats.block_rows += batch.consumed_data
        per_op = stats.per_operator_steps
        per_op[op.name] = per_op.get(op.name, 0) + batch.steps
        cost = 0.0
        if self.cost_model is not None:
            cost = self.cost_model.batch_cost(op, batch)
            if cost:
                self.clock.advance(cost)
                stats.busy_time += cost
        if self.bus is not None and batch.steps:
            self.bus.step(
                operator=op.name, round_id=self._round_id,
                time=self.clock.now(), kind="block", steps=batch.steps,
                probes=batch.probes, probes_emitted=batch.probes_emitted,
                emitted_data=batch.emitted_data,
                emitted_punctuation=batch.emitted_punctuation,
                duration=cost)
        self._refresh_idle()
        return batch

    # ------------------------------------------------------------------ #
    # ETS integration (the Backtrack-to-source hook)

    def _try_ets(self, source: SourceNode) -> bool:
        offered = self.offer_ets_always or self._ets_needed()
        injected = False
        if offered:
            self.stats.ets_offers += 1
            injected = self.ets_policy.on_source_stalled(
                source, self.clock.now(), self._round_id)
        if injected:
            self.stats.ets_injected += 1
            if self.cost_model is not None:
                cost = self.cost_model.ets_generation
                if cost:
                    self.clock.advance(cost)
                    self.stats.busy_time += cost
            self._refresh_idle()
        if self.bus is not None:
            self.bus.ets(operator=source.name, round_id=self._round_id,
                         time=self.clock.now(), injected=injected,
                         offered=offered)
            if injected:
                self.bus.punctuation(
                    operator=source.name, round_id=self._round_id,
                    time=self.clock.now(), origin="ets")
        return injected

    def _ets_needed(self) -> bool:
        """Is any IWP operator idle-waiting on pending data right now?"""
        return any(op.has_pending_data() and not op.more()
                   for op in self._iwp_ops)

    # ------------------------------------------------------------------ #
    # Bookkeeping hooks

    def _pump_due(self) -> None:
        if self.deliver_due is not None:
            self.deliver_due(self.clock.now())

    def _refresh_idle(self) -> None:
        if self.idle_tracker is not None:
            self.idle_tracker.refresh(self.clock.now())
