"""Windowed aggregate operators with punctuation-driven window closing.

Aggregates over unbounded streams are the original motivation for
punctuation (Tucker et al., TKDE 2003, the paper's reference [8]): a tumbling
window can only be *closed* once the operator knows no more tuples with
timestamps inside the window will arrive.  Data tuples carry that knowledge
implicitly (streams are ordered); punctuation tuples carry it explicitly —
which means on-demand ETS also speeds up aggregate emission on sparse
streams, a pleasant side effect exercised by the examples.

Two operators are provided:

* :class:`TumblingAggregate` — fixed-width consecutive windows; one output
  tuple per non-empty window (optionally per empty window too), stamped with
  the window's end time.
* :class:`SlidingAggregate` — continuous semantics: each data tuple emits the
  aggregate over the trailing time window ending at its timestamp.

Aggregation functions follow Stream Mill's user-defined-aggregate spirit: an
:class:`Aggregator` is any object with ``update(value)`` and ``result()``;
factories for the usual suspects are provided.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..errors import ExecutionError
from ..tuples import LATENT_TS, DataTuple
from ..windows import TimeWindow
from .base import BatchResult, Operator, OpContext, StepResult

__all__ = [
    "Aggregator",
    "Count",
    "Sum",
    "Avg",
    "Min",
    "Max",
    "AggSpec",
    "TumblingAggregate",
    "SlidingAggregate",
]


class Aggregator:
    """Base class for aggregation state: one instance per open window."""

    def update(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class Count(Aggregator):
    """Number of tuples in the window."""

    def __init__(self) -> None:
        self.n = 0

    def update(self, value: Any) -> None:
        self.n += 1

    def result(self) -> int:
        return self.n


class Sum(Aggregator):
    """Sum of a numeric field."""

    def __init__(self) -> None:
        self.total = 0

    def update(self, value: Any) -> None:
        self.total += value

    def result(self) -> Any:
        return self.total


class Avg(Aggregator):
    """Arithmetic mean of a numeric field (None for empty windows)."""

    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def update(self, value: Any) -> None:
        self.total += value
        self.n += 1

    def result(self) -> float | None:
        if not self.n:
            return None
        return self.total / self.n


class Min(Aggregator):
    """Minimum of a field (None for empty windows)."""

    def __init__(self) -> None:
        self.best: Any = None

    def update(self, value: Any) -> None:
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class Max(Aggregator):
    """Maximum of a field (None for empty windows)."""

    def __init__(self) -> None:
        self.best: Any = None

    def update(self, value: Any) -> None:
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class AggSpec:
    """One output column of an aggregate operator.

    Attributes:
        field: Input payload field fed to the aggregator; None feeds the
            whole payload (useful for Count and user-defined aggregates).
        factory: Zero-argument callable producing a fresh :class:`Aggregator`
            per window — any user-defined aggregate works here.
    """

    __slots__ = ("field", "factory")

    def __init__(self, factory: Callable[[], Aggregator],
                 field: str | None = None) -> None:
        self.factory = factory
        self.field = field

    def extract(self, payload: Any) -> Any:
        if self.field is None:
            return payload
        return payload[self.field]


class TumblingAggregate(Operator):
    """Fixed-width consecutive windows: ``[k*width, (k+1)*width)``.

    A window is closed — and its result emitted, stamped with the window end
    time — as soon as any element (data *or punctuation*) proves that stream
    time has passed the window's end.

    Args:
        width: Window width in stream seconds.
        aggs: Mapping from output field name to :class:`AggSpec`.
        group_by: Optional payload field; when set, one accumulator group per
            distinct value, and results carry the group key.
        emit_empty: Also emit a result tuple for windows with no data.
    """

    is_iwp = False
    arity = 1
    supports_blocks = True

    def __init__(self, name: str, width: float, aggs: Mapping[str, AggSpec],
                 *, group_by: str | None = None, emit_empty: bool = False,
                 output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        if width <= 0:
            raise ExecutionError(f"aggregate {name!r}: width must be positive")
        if not aggs:
            raise ExecutionError(f"aggregate {name!r}: needs at least one AggSpec")
        self.width = float(width)
        self.aggs = dict(aggs)
        self.group_by = group_by
        self.emit_empty = emit_empty
        self._window_start: float | None = None
        self._groups: dict[Any, dict[str, Aggregator]] = {}
        self.windows_emitted = 0

    # ------------------------------------------------------------------ #

    def _fresh_accumulators(self) -> dict[str, Aggregator]:
        return {out: spec.factory() for out, spec in self.aggs.items()}

    def _window_end(self) -> float:
        assert self._window_start is not None
        return self._window_start + self.width

    def _align(self, ts: float) -> float:
        """Start of the window containing ``ts``."""
        return (ts // self.width) * self.width

    def _flush(self, arrival_hint: float) -> int:
        """Emit results for the currently open window; returns tuples emitted."""
        emitted = 0
        end = self._window_end()
        if self._groups:
            for key, accumulators in sorted(self._groups.items(),
                                            key=lambda kv: repr(kv[0])):
                payload = {out: acc.result() for out, acc in accumulators.items()}
                if self.group_by is not None:
                    payload[self.group_by] = key
                payload["window_end"] = end
                self.emit(DataTuple(ts=end, payload=payload,
                                    arrival_ts=arrival_hint))
                emitted += 1
        elif self.emit_empty:
            payload = {out: spec.factory().result()
                       for out, spec in self.aggs.items()}
            payload["window_end"] = end
            self.emit(DataTuple(ts=end, payload=payload,
                                arrival_ts=arrival_hint))
            emitted += 1
        self._groups = {}
        self.windows_emitted += emitted
        return emitted

    def _advance_to(self, ts: float, arrival_hint: float) -> int:
        """Close every window whose end is ≤ ``ts``; returns tuples emitted."""
        emitted = 0
        if self._window_start is None:
            return 0
        while self._window_end() <= ts:
            emitted += self._flush(arrival_hint)
            if self.emit_empty:
                self._window_start += self.width
            else:
                # Jump over the gap of empty windows in one hop.
                self._window_start = max(self._window_start + self.width,
                                         self._align(ts))
        return emitted

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of the open window and its accumulator groups.

        Aggregators are plain-attribute objects (their ``vars()`` *is* their
        state); restore rebuilds each from its spec's factory and reapplies
        the attributes, so user-defined aggregates round-trip too as long as
        they keep their state in instance attributes.
        """
        return {
            "version": 1,
            "window_start": self._window_start,
            "groups": {
                repr(key): (key, {out: dict(vars(acc))
                                  for out, acc in accumulators.items()})
                for key, accumulators in self._groups.items()
            },
            "windows_emitted": self.windows_emitted,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(
                f"unsupported TumblingAggregate state: {state!r}")
        self._window_start = state["window_start"]
        self._groups = {}
        for key, acc_states in state["groups"].values():
            accumulators = self._fresh_accumulators()
            for out, attrs in acc_states.items():
                for attr, value in attrs.items():
                    setattr(accumulators[out], attr, value)
            self._groups[key] = accumulators
        self.windows_emitted = state["windows_emitted"]

    def execute_step(self, ctx: OpContext) -> StepResult:
        element = self.inputs[0].pop()
        if element.is_punctuation:
            emitted = self._advance_to(element.ts, element.ts)
            self.emit_punctuation(element)
            return StepResult(consumed=element, emitted_data=emitted,
                              emitted_punctuation=1)

        assert isinstance(element, DataTuple)
        if element.is_latent:
            element = element.stamped(ctx.clock.now())
        emitted = 0
        if self._window_start is None:
            self._window_start = self._align(element.ts)
        else:
            emitted = self._advance_to(element.ts, element.arrival_ts)
        key = element.payload[self.group_by] if self.group_by is not None else None
        accumulators = self._groups.get(key)
        if accumulators is None:
            accumulators = self._fresh_accumulators()
            self._groups[key] = accumulators
        for out, spec in self.aggs.items():
            accumulators[out].update(spec.extract(element.payload))
        return StepResult(consumed=element, emitted_data=emitted)

    def execute_block(self, ctx: OpContext, limit: int) -> BatchResult:
        """Columnar accumulation: fold a whole block into the open window.

        Rows are read straight off the block's columns in order — window
        advancement, group lookup and accumulator updates are exactly the
        scalar sequence (window results are emitted mid-block at the same
        points), but no :class:`DataTuple` is materialized per input row.
        Punctuation stays a batch boundary handled by the scalar step.
        """
        buf = self.inputs[0]
        block = buf.drain_block(limit)
        if block is None:
            if buf.is_empty:
                return BatchResult()
            batch = BatchResult()  # punctuation at the head: scalar step
            batch.add_step(self.execute_step(ctx))
            return batch
        ts_col = block.ts
        arrival_col = block.arrival
        payload_col = block.payloads
        group_by = self.group_by
        groups = self._groups
        agg_items = tuple(self.aggs.items())
        emitted = 0
        for i in block.indices():
            ts = ts_col[i]
            if ts == LATENT_TS:
                ts = ctx.clock.now()
            payload = payload_col[i]
            if self._window_start is None:
                self._window_start = self._align(ts)
            else:
                emitted += self._advance_to(ts, arrival_col[i])
                groups = self._groups  # _advance_to may have replaced it
            key = payload[group_by] if group_by is not None else None
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = self._fresh_accumulators()
                groups[key] = accumulators
            for out, spec in agg_items:
                accumulators[out].update(spec.extract(payload))
        n = block.count
        return BatchResult(steps=n, consumed_data=n, emitted_data=emitted)


class SlidingAggregate(Operator):
    """Continuous sliding-window aggregate.

    For every data tuple with timestamp ``t``, emits the aggregate over the
    input tuples with timestamps in ``(t - span, t]`` — the standard
    continuous-query semantics.  Punctuation passes through after expiring
    the trailing window (another place ETS frees memory).
    """

    is_iwp = False
    arity = 1

    def __init__(self, name: str, span: float, aggs: Mapping[str, AggSpec],
                 *, output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        if not aggs:
            raise ExecutionError(f"aggregate {name!r}: needs at least one AggSpec")
        self.aggs = dict(aggs)
        self.window = TimeWindow(span)
        # TimeWindow keeps ts >= now - span; for the half-open (t-span, t]
        # semantics we expire with a nudge, see _expire_to.
        self.span = float(span)

    def _expire_to(self, ts: float) -> None:
        self.window.expire(ts)

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of the trailing window contents."""
        return {"version": 1, "window": self.window.snapshot_state()}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(
                f"unsupported SlidingAggregate state: {state!r}")
        self.window.restore_state(state["window"])

    def execute_step(self, ctx: OpContext) -> StepResult:
        element = self.inputs[0].pop()
        if element.is_punctuation:
            self._expire_to(element.ts)
            self.emit_punctuation(element)
            return StepResult(consumed=element, emitted_punctuation=1)

        assert isinstance(element, DataTuple)
        if element.is_latent:
            element = element.stamped(ctx.clock.now())
        self._expire_to(element.ts)
        self.window.insert(element)
        accumulators = {out: spec.factory() for out, spec in self.aggs.items()}
        probes = 0
        for tup in self.window:
            probes += 1
            for out, spec in self.aggs.items():
                accumulators[out].update(spec.extract(tup.payload))
        payload = {out: acc.result() for out, acc in accumulators.items()}
        self.emit(DataTuple(ts=element.ts, payload=payload,
                            arrival_ts=element.arrival_ts))
        return StepResult(consumed=element, probes=probes, emitted_data=1)
