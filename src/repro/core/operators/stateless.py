"""Shared machinery for single-input, non-IWP operators.

Non-IWP operators are straightforward (paper Section 2): compute the result,
emit it with the input tuple's timestamp, consume the input.  They must also
be punctuation-transparent (Section 4.2): punctuation tuples pass through
unchanged, except for reformatting, so that ETS information reaches the IWP
operators down the path.
"""

from __future__ import annotations

from ..columnar import ColumnarBlock
from ..tuples import DataTuple, StreamElement
from .base import BatchResult, Operator, OpContext, StepResult

__all__ = ["StatelessOperator"]


class StatelessOperator(Operator):
    """Base for operators that map one input element to 0..n output tuples.

    Sub-classes implement :meth:`apply`, which receives a data tuple and
    returns the data tuples to emit (possibly none, as for a failed
    selection).  Punctuation handling and consumption are centralized here.

    The columnar path is centralized too: :meth:`execute_block` drains a
    whole :class:`~repro.core.columnar.ColumnarBlock` and hands it to
    :meth:`apply_block`.  The default ``apply_block`` materializes rows and
    loops :meth:`apply` — identical semantics for any subclass (including
    user-defined ones) while still amortizing the buffer traffic; Select /
    Project / Map override it with genuinely columnar transforms.
    """

    is_iwp = False
    arity = 1
    supports_blocks = True

    def execute_step(self, ctx: OpContext) -> StepResult:
        element: StreamElement = self.inputs[0].pop()
        if element.is_punctuation:
            self.emit_punctuation(element)
            return StepResult(consumed=element, emitted_punctuation=1)

        assert isinstance(element, DataTuple)
        emitted = 0
        for out in self.apply(element, ctx):
            self.emit(out)
            emitted += 1
        return StepResult(consumed=element, emitted_data=emitted)

    def apply(self, tup: DataTuple, ctx: OpContext) -> list[DataTuple]:
        """Transform one data tuple into its output tuples."""
        raise NotImplementedError

    def execute_batch(self, ctx: OpContext, limit: int) -> BatchResult:
        """Micro-batched path: drain a run of data tuples, apply, emit once.

        Punctuation is still handled one element at a time through the
        scalar step (it is a batch boundary by construction).
        """
        buf = self.inputs[0]
        head = buf.peek()
        if head is None:
            return BatchResult()
        if head.is_punctuation:
            batch = BatchResult()
            batch.add_step(self.execute_step(ctx))
            return batch
        run = buf.drain_batch(limit)
        apply = self.apply
        outs: list[DataTuple] = []
        for tup in run:
            outs.extend(apply(tup, ctx))
        if outs:
            for out_buf in self.outputs:
                out_buf.push_batch(outs)
        n = len(run)
        return BatchResult(steps=n, consumed_data=n, emitted_data=len(outs))

    def execute_block(self, ctx: OpContext, limit: int) -> BatchResult:
        """Columnar path: drain a block, transform its columns, push whole.

        Punctuation is still a batch boundary consumed by the scalar step;
        the fast path never sees it inside a block by construction.
        """
        buf = self.inputs[0]
        block = buf.drain_block(limit)
        if block is None:
            if buf.is_empty:
                return BatchResult()
            batch = BatchResult()  # punctuation at the head: scalar step
            batch.add_step(self.execute_step(ctx))
            return batch
        out = self.apply_block(block, ctx)
        emitted = out.count if out is not None else 0
        if emitted:
            for out_buf in self.outputs:
                out_buf.push_block(out)
        n = block.count
        return BatchResult(steps=n, consumed_data=n, emitted_data=emitted)

    def apply_block(self, block: ColumnarBlock,
                    ctx: OpContext) -> ColumnarBlock | None:
        """Transform one block into its output block (None/empty = nothing).

        The default loops :meth:`apply` over materialized rows, in row
        order — byte-identical for any subclass (stateful ``apply``
        implementations included) at the cost of materialization; columnar
        subclasses override this to work on the arrays directly.
        """
        apply = self.apply
        outs: list[DataTuple] = []
        for tup in block.to_tuples():
            outs.extend(apply(tup, ctx))
        if not outs:
            return None
        return ColumnarBlock.from_tuples(outs)
