"""Shared machinery for single-input, non-IWP operators.

Non-IWP operators are straightforward (paper Section 2): compute the result,
emit it with the input tuple's timestamp, consume the input.  They must also
be punctuation-transparent (Section 4.2): punctuation tuples pass through
unchanged, except for reformatting, so that ETS information reaches the IWP
operators down the path.
"""

from __future__ import annotations

from ..tuples import DataTuple, StreamElement
from .base import BatchResult, Operator, OpContext, StepResult

__all__ = ["StatelessOperator"]


class StatelessOperator(Operator):
    """Base for operators that map one input element to 0..n output tuples.

    Sub-classes implement :meth:`apply`, which receives a data tuple and
    returns the data tuples to emit (possibly none, as for a failed
    selection).  Punctuation handling and consumption are centralized here.
    """

    is_iwp = False
    arity = 1

    def execute_step(self, ctx: OpContext) -> StepResult:
        element: StreamElement = self.inputs[0].pop()
        if element.is_punctuation:
            self.emit_punctuation(element)
            return StepResult(consumed=element, emitted_punctuation=1)

        assert isinstance(element, DataTuple)
        emitted = 0
        for out in self.apply(element, ctx):
            self.emit(out)
            emitted += 1
        return StepResult(consumed=element, emitted_data=emitted)

    def apply(self, tup: DataTuple, ctx: OpContext) -> list[DataTuple]:
        """Transform one data tuple into its output tuples."""
        raise NotImplementedError

    def execute_batch(self, ctx: OpContext, limit: int) -> BatchResult:
        """Micro-batched path: drain a run of data tuples, apply, emit once.

        Punctuation is still handled one element at a time through the
        scalar step (it is a batch boundary by construction).
        """
        buf = self.inputs[0]
        head = buf.peek()
        if head is None:
            return BatchResult()
        if head.is_punctuation:
            batch = BatchResult()
            batch.add_step(self.execute_step(ctx))
            return batch
        run = buf.drain_batch(limit)
        apply = self.apply
        outs: list[DataTuple] = []
        for tup in run:
            outs.extend(apply(tup, ctx))
        if outs:
            for out_buf in self.outputs:
                out_buf.push_batch(outs)
        n = len(run)
        return BatchResult(steps=n, consumed_data=n, emitted_data=len(outs))
