"""Sink nodes: where result streams leave the query graph.

The arcs leading into a sink are the query's output buffers; an output
wrapper (the user, in our examples) drains them.  Per the paper, sink nodes
**eliminate punctuation tuples**, which are only needed internally.

The sink is also the natural place to measure the paper's headline metric,
*output latency*: the difference between the virtual-clock time at which a
data tuple is delivered and the time it entered the DSMS (its
``arrival_ts``).  A pluggable callback receives every delivered tuple so that
examples can stream results while experiments aggregate statistics.
"""

from __future__ import annotations

from typing import Any, Callable

from ..tuples import DataTuple
from .base import BatchResult, Operator, OpContext, StepResult

__all__ = ["SinkNode"]


class SinkNode(Operator):
    """Terminal node consuming one result stream.

    Attributes:
        delivered: Number of data tuples delivered to the output wrapper.
        punctuation_eliminated: Punctuation tuples absorbed by this sink.
        latency_sum / latency_max: Aggregate latency statistics, in stream
            seconds, over tuples whose ``arrival_ts`` was recorded.
    """

    is_iwp = False
    arity = 1
    supports_blocks = True

    def __init__(self, name: str,
                 on_output: Callable[[DataTuple, float], Any] | None = None,
                 *, keep_outputs: bool = False) -> None:
        """Create a sink.

        Args:
            name: Node name within the graph.
            on_output: Callback invoked as ``on_output(tuple, latency)`` for
                every delivered data tuple; latency is ``nan`` when the tuple
                never got an arrival stamp.
            keep_outputs: When True, delivered tuples are retained on
                :attr:`outputs_seen` — convenient in tests and examples,
                ruinous in long benchmarks, hence off by default.
        """
        super().__init__(name)
        self.on_output = on_output
        self.keep_outputs = keep_outputs
        self.outputs_seen: list[DataTuple] = []
        self.delivered = 0
        self.punctuation_eliminated = 0
        self.latency_sum = 0.0
        self.latency_max = 0.0
        self.latency_count = 0

    def execute_step(self, ctx: OpContext) -> StepResult:
        element = self.inputs[0].pop()
        if element.is_punctuation:
            self.punctuation_eliminated += 1
            return StepResult(consumed=element)

        assert isinstance(element, DataTuple)
        now = ctx.clock.now()
        latency = now - element.arrival_ts
        if latency == latency:  # not NaN
            self.latency_sum += latency
            self.latency_count += 1
            if latency > self.latency_max:
                self.latency_max = latency
        self.delivered += 1
        if self.keep_outputs:
            self.outputs_seen.append(element)
        if self.on_output is not None:
            self.on_output(element, latency)
        return StepResult(consumed=element, emitted_data=0)

    def execute_batch(self, ctx: OpContext, limit: int) -> BatchResult:
        """Micro-batched delivery: drain a run of data tuples in one step."""
        batch = BatchResult()
        buf = self.inputs[0]
        while batch.steps < limit:
            head = buf.peek()
            if head is None:
                break
            if head.is_punctuation:
                buf.pop()
                self.punctuation_eliminated += 1
                batch.steps += 1
                batch.consumed_punctuation += 1
                break  # punctuation is a batch boundary
            run = buf.drain_batch(limit - batch.steps)
            now = ctx.clock.now()
            on_output = self.on_output
            for element in run:
                assert isinstance(element, DataTuple)
                latency = now - element.arrival_ts
                if latency == latency:  # not NaN
                    self.latency_sum += latency
                    self.latency_count += 1
                    if latency > self.latency_max:
                        self.latency_max = latency
                if on_output is not None:
                    on_output(element, latency)
            n = len(run)
            self.delivered += n
            if self.keep_outputs:
                self.outputs_seen.extend(run)  # type: ignore[arg-type]
            batch.steps += n
            batch.consumed_data += n
        return batch

    def execute_block(self, ctx: OpContext, limit: int) -> BatchResult:
        """Columnar delivery: consume whole blocks off the input buffer.

        When no per-tuple callback is registered and outputs are not kept,
        latency statistics are accumulated straight off the block's arrival
        column without materializing a single tuple — the common benchmark
        configuration.  Otherwise rows are materialized in order and handed
        to the callback exactly as the scalar path would.
        """
        batch = BatchResult()
        buf = self.inputs[0]
        while batch.steps < limit:
            block = buf.drain_block(limit - batch.steps)
            if block is None:
                if buf.is_empty:
                    break
                # Punctuation at the head: absorb it, close the batch.
                buf.pop()
                self.punctuation_eliminated += 1
                batch.steps += 1
                batch.consumed_punctuation += 1
                break
            now = ctx.clock.now()
            if self.on_output is None and not self.keep_outputs:
                for arrival in block.iter_arrival():
                    latency = now - arrival
                    if latency == latency:  # not NaN
                        self.latency_sum += latency
                        self.latency_count += 1
                        if latency > self.latency_max:
                            self.latency_max = latency
            else:
                on_output = self.on_output
                for element in block.to_tuples():
                    latency = now - element.arrival_ts
                    if latency == latency:  # not NaN
                        self.latency_sum += latency
                        self.latency_count += 1
                        if latency > self.latency_max:
                            self.latency_max = latency
                    if self.keep_outputs:
                        self.outputs_seen.append(element)
                    if on_output is not None:
                        on_output(element, latency)
            n = block.count
            self.delivered += n
            batch.steps += n
            batch.consumed_data += n
        return batch

    @property
    def mean_latency(self) -> float:
        """Mean output latency in stream seconds (nan before any output)."""
        if not self.latency_count:
            return float("nan")
        return self.latency_sum / self.latency_count

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of delivery counters and latency statistics.

        ``delivered`` doubles as the sink's checkpoint-time high-water mark:
        recovery compares it against the WAL-recorded delivery count to know
        how many replayed outputs to suppress.  ``outputs_seen`` is retained
        state too when ``keep_outputs`` is on.
        """
        return {
            "version": 1,
            "delivered": self.delivered,
            "punctuation_eliminated": self.punctuation_eliminated,
            "latency_sum": self.latency_sum,
            "latency_max": self.latency_max,
            "latency_count": self.latency_count,
            "outputs_seen": list(self.outputs_seen) if self.keep_outputs else [],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ValueError(f"unsupported SinkNode state: {state!r}")
        self.delivered = state["delivered"]
        self.punctuation_eliminated = state["punctuation_eliminated"]
        self.latency_sum = state["latency_sum"]
        self.latency_max = state["latency_max"]
        self.latency_count = state["latency_count"]
        self.outputs_seen = list(state["outputs_seen"])
