"""Projection operator: narrow each payload record to a subset of fields."""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Iterable

from ..columnar import ColumnarBlock
from ..errors import SchemaError
from ..tuples import DataTuple
from .base import OpContext
from .stateless import StatelessOperator

__all__ = ["Project"]


class Project(StatelessOperator):
    """Keep only the named payload fields of every data tuple.

    Payloads must be mappings.  Missing fields raise :class:`SchemaError`
    rather than silently emitting partial records — a projection that cannot
    find its columns indicates a mis-wired query graph.
    """

    def __init__(self, name: str, fields: Iterable[str], *, output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        self.fields = tuple(fields)
        if not self.fields:
            raise SchemaError(f"projection {name!r} must keep at least one field")

    def apply(self, tup: DataTuple, ctx: OpContext) -> list[DataTuple]:
        payload = tup.payload
        if not isinstance(payload, Mapping):
            raise SchemaError(
                f"projection {self.name!r}: payload must be a mapping, "
                f"got {type(payload).__name__}"
            )
        missing = [f for f in self.fields if f not in payload]
        if missing:
            raise SchemaError(
                f"projection {self.name!r}: payload missing fields {missing}"
            )
        return [tup.with_payload({f: payload[f] for f in self.fields})]

    def apply_block(self, block: ColumnarBlock,
                    ctx: OpContext) -> ColumnarBlock | None:
        """Columnar projection: rewrite only the payloads column.

        Timestamps, sequence numbers and arrival times are shared with the
        input block untouched — projection never moves a row, so none of the
        per-tuple ``dataclasses.replace`` churn of the scalar path happens.
        Schema errors carry the same messages as :meth:`apply`.
        """
        fields = self.fields
        new_payloads: list[Any] = []
        for payload in block.iter_payloads():
            if not isinstance(payload, Mapping):
                raise SchemaError(
                    f"projection {self.name!r}: payload must be a mapping, "
                    f"got {type(payload).__name__}"
                )
            missing = [f for f in fields if f not in payload]
            if missing:
                raise SchemaError(
                    f"projection {self.name!r}: payload missing fields {missing}"
                )
            new_payloads.append({f: payload[f] for f in fields})
        return block.with_payloads(new_payloads)
