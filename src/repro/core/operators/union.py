"""The union operator — the paper's canonical Idle-Waiting-Prone operator.

Union is a sort-merge over its input streams: it repeatedly moves a tuple
with minimal timestamp to the output, producing a single stream ordered by
timestamp.  Three behavioural modes are supported, matching the paper:

* **strict** (paper Fig. 1): union proceeds only when *all* inputs are
  nonempty; this is the classical rule and both suffers idle-waiting and
  mishandles simultaneous tuples (Section 4.1).
* **TSM / relaxed** (paper Figs. 5–6, the default): each input carries a
  Time-Stamp Memory register; with τ the minimum over the registers, union
  proceeds whenever some input holds an element stamped τ.  Punctuation
  tuples advance registers and are re-emitted (deduplicated) downstream.
* **latent** (engaged automatically for unstamped elements): a latent tuple
  is forwarded as soon as it arrives, with no timestamp checks at all —
  the paper's scenario D and its performance optimum.
"""

from __future__ import annotations

from ..columnar import ColumnarBlock
from ..errors import ExecutionError, GraphError
from ..tuples import LATENT_TS, Punctuation, StreamElement
from .base import BatchResult, Operator, OpContext, StepResult

__all__ = ["Union"]


class Union(Operator):
    """N-ary order-preserving merge with TSM-register idle-waiting relief.

    Attributes:
        strict: Use the original Fig.-1 rules (all-inputs-present) instead of
            the relaxed TSM condition.  Kept for the X1 ablation and for
            faithful scenario-A baselines.
    """

    is_iwp = True
    arity: int | None = None  # n-ary
    supports_blocks = True  # both modes: relaxed sub-gate runs, strict merge

    def __init__(self, name: str, *, strict: bool = False, output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        self.strict = strict
        self._last_emitted_ts = LATENT_TS
        self.data_forwarded = 0
        self.punctuation_consumed = 0
        self.punctuation_forwarded = 0
        self.punctuation_suppressed = 0

    def snapshot_state(self) -> dict:
        """Versioned snapshot of emission watermark and counters."""
        return {
            "version": 1,
            "last_emitted_ts": self._last_emitted_ts,
            "data_forwarded": self.data_forwarded,
            "punctuation_consumed": self.punctuation_consumed,
            "punctuation_forwarded": self.punctuation_forwarded,
            "punctuation_suppressed": self.punctuation_suppressed,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(f"unsupported Union state: {state!r}")
        self._last_emitted_ts = state["last_emitted_ts"]
        self.data_forwarded = state["data_forwarded"]
        self.punctuation_consumed = state["punctuation_consumed"]
        self.punctuation_forwarded = state["punctuation_forwarded"]
        self.punctuation_suppressed = state["punctuation_suppressed"]

    def validate_wiring(self) -> None:
        super().validate_wiring()
        if len(self.inputs) < 2:
            raise GraphError(
                f"union {self.name!r} needs at least two inputs, "
                f"has {len(self.inputs)}"
            )

    # ------------------------------------------------------------------ #
    # Gating

    def _gates(self) -> list[float]:
        """Per-input gate timestamps (refreshes TSM registers)."""
        return [buf.gate_ts() for buf in self.inputs]

    def _latent_ready_index(self) -> int | None:
        """Index of an input whose head is a latent tuple, if any.

        Uses :meth:`StreamBuffer.head_ts` instead of ``peek`` so a columnar
        block at the head is inspected without being exploded back into
        tuples (punctuation always carries a real timestamp, so a latent
        head timestamp implies a latent *data* tuple).
        """
        for i, buf in enumerate(self.inputs):
            if buf.head_ts() == LATENT_TS:
                return i
        return None

    def more(self) -> bool:
        if self._latent_ready_index() is not None:
            return True
        if self.strict:
            return all(buf for buf in self.inputs)
        gates = self._gates()
        tau = min(gates)
        if tau == LATENT_TS:
            return False  # some input has never produced: block conservatively
        return any(buf.head_ts() == tau for buf in self.inputs)

    def stalled_input_index(self) -> int:
        if self.strict:
            for i, buf in enumerate(self.inputs):
                if buf.is_empty:
                    return i
            return 0
        gates = self._gates()
        tau = min(gates)
        candidates = [i for i, buf in enumerate(self.inputs)
                      if buf.is_empty and gates[i] == tau]
        if candidates:
            return candidates[0]
        # Fall back to the input with the smallest gate; keeps backtracking
        # well-defined even if more() flipped between calls.
        return min(range(len(gates)), key=gates.__getitem__)

    # ------------------------------------------------------------------ #
    # Execution

    def _select_index(self) -> int:
        """Choose which input to consume from, per the active mode."""
        latent_idx = self._latent_ready_index()
        if latent_idx is not None:
            return latent_idx
        if self.strict:
            heads = [(buf.head_ts(), i) for i, buf in enumerate(self.inputs)]
            return min(heads)[1]
        gates = self._gates()
        tau = min(gates)
        # Prefer data tuples over punctuation at equal timestamps so that a
        # punctuation never delays a ready data tuple it arrived with.
        punct_idx: int | None = None
        for i, buf in enumerate(self.inputs):
            head = buf.peek()
            if head is None or head.ts != tau:
                continue
            if head.is_punctuation:
                punct_idx = punct_idx if punct_idx is not None else i
            else:
                return i
        if punct_idx is None:
            raise ExecutionError(
                f"union {self.name!r}: execute_step called without more()"
            )
        return punct_idx

    def execute_step(self, ctx: OpContext) -> StepResult:
        idx = self._select_index()
        element = self.inputs[idx].pop()

        if element.is_punctuation:
            self.punctuation_consumed += 1
            # The safe output watermark is min over all gates *after* this
            # punctuation advanced its own input's register.
            tau = min(self._gates()) if not self.strict else element.ts
            if tau > self._last_emitted_ts:
                self.emit(Punctuation(ts=tau, origin=self.name,
                                      periodic=getattr(element, "periodic", False)))
                self._last_emitted_ts = tau
                self.punctuation_forwarded += 1
                return StepResult(consumed=element, emitted_punctuation=1)
            self.punctuation_suppressed += 1
            return StepResult(consumed=element)

        self.emit(element)
        self.data_forwarded += 1
        if element.ts != LATENT_TS and element.ts > self._last_emitted_ts:
            self._last_emitted_ts = element.ts
        return StepResult(consumed=element, emitted_data=1)

    def execute_batch(self, ctx: OpContext, limit: int) -> BatchResult:
        """Micro-batched sort-merge, observationally identical to the scalar
        path.

        The amortization opportunity: while one input's head run stays
        *strictly* below every other input's gate timestamp, the scalar path
        would pick that input on every iteration — so the whole run can be
        drained and forwarded at once.  Ties at the gate (and latent heads,
        and punctuation) fall back to the exact scalar selection, one
        element at a time, preserving tie-breaking order.
        """
        if self.strict:
            return super().execute_batch(ctx, limit)
        batch = BatchResult()
        staged: list[StreamElement] = []
        inputs = self.inputs
        while batch.steps < limit:
            latent_idx = self._latent_ready_index()
            if latent_idx is not None:
                element = inputs[latent_idx].pop()
                staged.append(element)
                self.data_forwarded += 1
                batch.steps += 1
                batch.consumed_data += 1
                batch.emitted_data += 1
                continue
            gates = self._gates()
            tau = min(gates)
            if tau == LATENT_TS:
                break
            data_idx: int | None = None
            punct_idx: int | None = None
            for i, buf in enumerate(inputs):
                head = buf.peek()
                if head is None or head.ts != tau:
                    continue
                if head.is_punctuation:
                    if punct_idx is None:
                        punct_idx = i
                else:
                    data_idx = i
                    break
            if data_idx is not None:
                buf = inputs[data_idx]
                other_min = min(g for j, g in enumerate(gates)
                                if j != data_idx)
                if tau < other_min:
                    run = buf.drain_batch(limit - batch.steps,
                                          max_ts=other_min)
                else:
                    # Tie with another input's gate: consume exactly the
                    # head element so cross-input ordering matches scalar.
                    run = [buf.pop()]
                staged.extend(run)
                last = self._last_emitted_ts
                for element in run:
                    ts = element.ts
                    if ts != LATENT_TS and ts > last:
                        last = ts
                self._last_emitted_ts = last
                n = len(run)
                self.data_forwarded += n
                batch.steps += n
                batch.consumed_data += n
                batch.emitted_data += n
                continue
            if punct_idx is not None:
                element = inputs[punct_idx].pop()
                self.punctuation_consumed += 1
                batch.steps += 1
                batch.consumed_punctuation += 1
                tau = min(self._gates())
                if tau > self._last_emitted_ts:
                    staged.append(Punctuation(
                        ts=tau, origin=self.name,
                        periodic=getattr(element, "periodic", False)))
                    self._last_emitted_ts = tau
                    self.punctuation_forwarded += 1
                    batch.emitted_punctuation += 1
                else:
                    self.punctuation_suppressed += 1
                break  # punctuation is a batch boundary
            break  # no head at tau: more() is false
        if staged:
            for out in self.outputs:
                out.push_batch(staged)
        return batch

    def execute_block(self, ctx: OpContext, limit: int) -> BatchResult:
        """Columnar sort-merge: forward sub-gate runs as whole blocks.

        Same merge logic as :meth:`execute_batch`, but when one input's run
        stays strictly below every other input's gate the run is drained as
        a :class:`~repro.core.columnar.ColumnarBlock` and forwarded without
        materializing a single tuple.  Gate ties, latent heads and
        punctuation fall back to the exact scalar selection (popping through
        the buffer, which explodes a head block lazily when needed), so
        cross-input ordering and punctuation dedup are byte-identical.
        Strict mode routes through :meth:`_execute_block_strict`, which
        amortizes over head-to-head runs instead of sub-gate runs.
        """
        if self.strict:
            return self._execute_block_strict(ctx, limit)
        batch = BatchResult()
        staged: list[StreamElement | ColumnarBlock] = []
        inputs = self.inputs
        while batch.steps < limit:
            latent_idx = self._latent_ready_index()
            if latent_idx is not None:
                element = inputs[latent_idx].pop()
                staged.append(element)
                self.data_forwarded += 1
                batch.steps += 1
                batch.consumed_data += 1
                batch.emitted_data += 1
                continue
            gates = self._gates()
            tau = min(gates)
            if tau == LATENT_TS:
                break
            data_idx: int | None = None
            punct_idx: int | None = None
            for i, buf in enumerate(inputs):
                if buf.head_ts() != tau:
                    continue
                if buf.head_is_punctuation():
                    if punct_idx is None:
                        punct_idx = i
                else:
                    data_idx = i
                    break
            if data_idx is not None:
                buf = inputs[data_idx]
                other_min = min(g for j, g in enumerate(gates)
                                if j != data_idx)
                if tau < other_min:
                    blk = buf.drain_block(limit - batch.steps,
                                          max_ts=other_min)
                    assert blk is not None  # head is data at tau
                    staged.append(blk)
                    last = blk.last_ts()
                    if last != LATENT_TS and last > self._last_emitted_ts:
                        self._last_emitted_ts = last
                    n = blk.count
                else:
                    # Tie with another input's gate: consume exactly the
                    # head element so cross-input ordering matches scalar.
                    element = buf.pop()
                    staged.append(element)
                    ts = element.ts
                    if ts != LATENT_TS and ts > self._last_emitted_ts:
                        self._last_emitted_ts = ts
                    n = 1
                self.data_forwarded += n
                batch.steps += n
                batch.consumed_data += n
                batch.emitted_data += n
                continue
            if punct_idx is not None:
                element = inputs[punct_idx].pop()
                self.punctuation_consumed += 1
                batch.steps += 1
                batch.consumed_punctuation += 1
                tau = min(self._gates())
                if tau > self._last_emitted_ts:
                    staged.append(Punctuation(
                        ts=tau, origin=self.name,
                        periodic=getattr(element, "periodic", False)))
                    self._last_emitted_ts = tau
                    self.punctuation_forwarded += 1
                    batch.emitted_punctuation += 1
                else:
                    self.punctuation_suppressed += 1
                break  # punctuation is a batch boundary
            break  # no head at tau: more() is false
        for entry in staged:
            if isinstance(entry, ColumnarBlock):
                for out in self.outputs:
                    out.push_block(entry)
            else:
                for out in self.outputs:
                    out.push(entry)
        return batch

    def _execute_block_strict(self, ctx: OpContext, limit: int) -> BatchResult:
        """Columnar strict merge: emit maximal runs between interleave points.

        The strict rule proceeds only while every input is nonempty and
        always consumes the smallest head timestamp (ties broken by input
        index).  While the chosen input's head run stays *strictly* below
        every other input's head timestamp, the scalar path would pick that
        input on every iteration — so the run up to the interleave boundary
        is drained as one zero-copy block slice.  Ties at the boundary are
        popped one element at a time (the scalar ``min((ts, i))`` decides),
        and punctuation stays a scalar-consumed batch boundary, so the merge
        is byte-identical to the scalar engine.
        """
        batch = BatchResult()
        staged: list[StreamElement | ColumnarBlock] = []
        inputs = self.inputs
        n_inputs = len(inputs)
        # Head timestamps are cached across iterations: only the input just
        # consumed from can change its head, so only that slot is refreshed.
        # head_ts() is side-effect free, and nothing pushes into our inputs
        # while we execute, so the cache cannot go stale mid-invocation.
        heads = [buf.head_ts() for buf in inputs]
        steps = data_fwd = 0
        INF = float("inf")
        while steps < limit:
            # Latent heads jump the queue (they carry no timestamp yet).
            idx = -1
            for i in range(n_inputs):
                if heads[i] == LATENT_TS:
                    idx = i
                    break
            if idx >= 0:
                buf = inputs[idx]
                staged.append(buf.pop())
                data_fwd += 1
                steps += 1
                heads[idx] = buf.head_ts()
                continue
            # Strict: every input must be nonempty; find the smallest head
            # (first index wins ties, matching the scalar ``min((ts, i))``)
            # and the smallest *other* head in one two-minimum scan.
            ts = bound = INF
            for i in range(n_inputs):
                h = heads[i]
                if h is None:
                    idx = -1
                    break
                if idx < 0 or h < ts:
                    bound = ts
                    ts = h
                    idx = i
                elif h < bound:
                    bound = h
            if idx < 0:
                break  # some input is empty
            buf = inputs[idx]
            if buf.head_is_punctuation():
                element = buf.pop()
                self.punctuation_consumed += 1
                steps += 1
                batch.consumed_punctuation += 1
                tau = element.ts
                if tau > self._last_emitted_ts:
                    staged.append(Punctuation(
                        ts=tau, origin=self.name,
                        periodic=getattr(element, "periodic", False)))
                    self._last_emitted_ts = tau
                    self.punctuation_forwarded += 1
                    batch.emitted_punctuation += 1
                else:
                    self.punctuation_suppressed += 1
                break  # punctuation is a batch boundary
            if ts < bound:
                blk = buf.drain_block(limit - steps, max_ts=bound)
                assert blk is not None  # head is data below bound
                staged.append(blk)
                last = blk.last_ts()
                if last != LATENT_TS and last > self._last_emitted_ts:
                    self._last_emitted_ts = last
                n = blk.count
            else:
                # Head-to-head tie: consume exactly one element so the
                # scalar (ts, input-index) tie-break decides each round.
                element = buf.pop()
                staged.append(element)
                if element.ts != LATENT_TS \
                        and element.ts > self._last_emitted_ts:
                    self._last_emitted_ts = element.ts
                n = 1
            data_fwd += n
            steps += n
            heads[idx] = buf.head_ts()
        self.data_forwarded += data_fwd
        batch.steps = steps
        batch.consumed_data = data_fwd
        batch.emitted_data = data_fwd
        for entry in staged:
            if isinstance(entry, ColumnarBlock):
                for out in self.outputs:
                    out.push_block(entry)
            else:
                for out in self.outputs:
                    out.push(entry)
        return batch
