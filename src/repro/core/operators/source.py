"""Source nodes: where streams enter the query graph.

A source node owns the input buffer(s) of the query (the arcs leaving it).
In Stream Mill these buffers are filled by external wrappers; in this
reproduction the simulation kernel plays the wrapper role by calling
:meth:`SourceNode.ingest` at each arrival event.

The source is also where timestamps are *assigned* (paper Section 5):

* ``INTERNAL`` — the tuple is stamped with the system (virtual) clock on
  entry;
* ``EXTERNAL`` — the application already stamped it; the source validates
  per-stream order and remembers arrival statistics for the skew-bound ETS
  generator;
* ``LATENT`` — the tuple enters unstamped.

Finally, the source is where on-demand ETS values materialize: when the
engine's backtracking reaches a source whose buffer is empty, the configured
ETS policy asks the source to :meth:`inject_punctuation`.
"""

from __future__ import annotations

from ..errors import SchemaError, TimestampError
from ..tuples import LATENT_TS, DataTuple, Punctuation, TimestampKind
from .base import Operator, OpContext, StepResult

__all__ = ["SourceNode"]


class SourceNode(Operator):
    """Entry point of a stream into the query graph.

    Attributes:
        timestamp_kind: How tuples of this stream are stamped.
        last_data_ts: Timestamp of the most recent *data* tuple ingested
            (``LATENT_TS`` before the first one).
        last_arrival_wall: Virtual-clock time of the most recent data-tuple
            arrival (``nan`` before the first one); the external skew-bound
            ETS generator uses this together with ``last_data_ts``.
        watermark: Largest timestamp ever emitted on this stream, data or
            punctuation; ETS generation never goes below it.
    """

    is_iwp = False
    arity: int | None = 0

    def __init__(self, name: str,
                 timestamp_kind: TimestampKind = TimestampKind.INTERNAL,
                 *, out_of_order: bool = False, output_schema=None,
                 validate_schema: bool = False) -> None:
        """Create a source.

        Args:
            name: Node name within the graph.
            timestamp_kind: How this stream's tuples are stamped.
            out_of_order: Allow externally timestamped tuples to arrive out
                of timestamp order (bounded-disorder feeds); the graph
                disables order enforcement on this source's arcs, and a
                downstream :class:`~repro.core.operators.reorder.Reorder`
                is expected to restore order before any IWP operator.
            output_schema: Optional schema of the stream's records.
            validate_schema: When True (and ``output_schema`` is set),
                :meth:`ingest` validates every payload against the schema
                and rejects non-conforming records with a structured
                :class:`SchemaError` instead of letting them corrupt
                downstream operators.
        """
        super().__init__(name, output_schema=output_schema)
        self.timestamp_kind = timestamp_kind
        self.validate_schema = validate_schema
        #: Optional :class:`~repro.faults.degrade.QuarantinePolicy` (or any
        #: object with its ``handle`` signature) deciding what happens to
        #: externally timestamped tuples whose timestamp regressed below the
        #: stream's frontier — e.g. after a clock-skew fault outran the
        #: declared ``external_delta``.  None keeps the strict raise.
        self.quarantine = None
        #: Optional admission throttle (any object with the
        #: :class:`~repro.feedback.TokenBucketThrottle` ``admit``/
        #: ``on_feedback`` signature).  None — the default — admits
        #: everything, keeping the healthy path byte-identical.
        self.throttle = None
        if out_of_order and timestamp_kind is not TimestampKind.EXTERNAL:
            raise TimestampError(
                f"source {name!r}: only externally timestamped streams can "
                "be out of order (internal/latent stamps are assigned in "
                "arrival order)"
            )
        self.out_of_order = out_of_order
        self.last_data_ts = LATENT_TS
        self.last_arrival_wall = float("nan")
        self.watermark = LATENT_TS
        self.ingested_count = 0
        self.punctuation_injected = 0
        #: Records refused admission by the installed throttle.
        self.throttled_count = 0
        #: Engine round in which this source last generated an on-demand ETS;
        #: bounds generation to once per wake-up (see execution module).
        self.last_ets_round = -1

    def _notify_violation(self, **fields) -> None:
        """Announce an ingest violation on the graph's registry hook.

        Runs *before* the error is raised (or the quarantine decision is
        made), so monitors and tracers see the event even when the caller's
        stack unwinds.  Standalone sources (no wired outputs) skip silently.
        """
        for buf in self.outputs:
            registry = buf.registry
            if registry is not None:
                registry.notify_violation(**fields)
                return

    # ------------------------------------------------------------------ #
    # Wrapper-facing API

    def ingest(self, payload, now: float, ts: float | None = None,
               arrival: float | None = None) -> DataTuple | None:
        """Admit one application record into the stream at wall time ``now``.

        Args:
            payload: The record carried by the tuple.
            now: Current virtual-clock time — the instant the tuple *enters*
                the DSMS; internal timestamps are assigned from it.
            ts: Application timestamp; required for external streams and
                forbidden otherwise.
            arrival: Physical arrival instant for latency accounting; when
                the engine was busy, this precedes ``now``.  Defaults to
                ``now``.

        Returns:
            The :class:`DataTuple` that was pushed into the output buffer(s),
            or None when an installed quarantine policy dropped the record
            or the admission throttle refused it.
        """
        if self.throttle is not None and not self.throttle.admit(now):
            self.throttled_count += 1
            return None
        if self.validate_schema and self.output_schema is not None:
            try:
                self.output_schema.validate(payload)
            except SchemaError as exc:
                fields = dict(operator=self.name, port=0,
                              offending_ts=ts, last_seen_ts=self.last_data_ts,
                              kind="schema")
                self._notify_violation(**fields)
                raise SchemaError(
                    f"source {self.name!r}: payload rejected by schema "
                    f"({exc})", **fields,
                ) from exc
        kind = self.timestamp_kind
        if kind is TimestampKind.EXTERNAL:
            if ts is None:
                raise TimestampError(
                    f"source {self.name!r} is externally timestamped; "
                    "ingest() requires ts",
                    operator=self.name, port=0, kind="missing-ts",
                )
            stamped_ts = float(ts)
            if not self.out_of_order:
                # The stream frontier a new timestamp must not regress
                # below: the last data tuple, and — when a quarantine policy
                # is judging admission — any punctuation-advanced watermark
                # (a fallback heartbeat may have outrun the application).
                floor = self.last_data_ts
                if self.quarantine is not None and self.watermark > floor:
                    floor = self.watermark
                if floor != LATENT_TS and stamped_ts < floor:
                    fields = dict(operator=self.name, port=0,
                                  offending_ts=stamped_ts, last_seen_ts=floor,
                                  kind="out-of-order")
                    self._notify_violation(**fields)
                    if self.quarantine is not None:
                        admitted = self.quarantine.handle(
                            source_name=self.name, ts=stamped_ts,
                            floor=floor, now=now)
                        if admitted is None:
                            return None
                        stamped_ts = admitted
                    else:
                        raise TimestampError(
                            f"source {self.name!r}: external timestamps must "
                            f"be non-decreasing ({stamped_ts} after {floor})",
                            **fields,
                        )
        elif kind is TimestampKind.INTERNAL:
            if ts is not None:
                raise TimestampError(
                    f"source {self.name!r} is internally timestamped; "
                    "ingest() must not pass ts"
                )
            stamped_ts = now
        else:  # LATENT
            if ts is not None:
                raise TimestampError(
                    f"source {self.name!r} is latent; ingest() must not pass ts"
                )
            stamped_ts = LATENT_TS

        tup = DataTuple(ts=stamped_ts, payload=payload, kind=kind,
                        arrival_ts=arrival if arrival is not None else now)
        self.emit(tup)
        self.ingested_count += 1
        if stamped_ts != LATENT_TS and stamped_ts >= self.last_data_ts:
            # On out-of-order streams, track the frontier tuple: the
            # skew-bound ETS generator extrapolates from the largest
            # timestamp seen and its arrival instant.
            self.last_data_ts = stamped_ts
            if stamped_ts > self.watermark:
                self.watermark = stamped_ts
        self.last_arrival_wall = now
        return tup

    def inject_punctuation(self, ts: float, *, origin: str = "",
                           periodic: bool = False) -> bool:
        """Push an ETS punctuation with timestamp ``ts`` into the stream.

        The injection is skipped (returning False) when ``ts`` would not
        advance the stream's watermark: such a punctuation could violate the
        ordered-stream invariant downstream and could not unblock anything
        the previous watermark did not already unblock.
        """
        if self.timestamp_kind is TimestampKind.LATENT:
            return False
        if self.watermark != LATENT_TS and ts <= self.watermark:
            return False
        punct = Punctuation(ts=ts, origin=origin or self.name, periodic=periodic)
        self.emit(punct)
        self.watermark = ts
        self.punctuation_injected += 1
        return True

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of the stream frontier and counters."""
        state = {
            "version": 1,
            "last_data_ts": self.last_data_ts,
            "last_arrival_wall": self.last_arrival_wall,
            "watermark": self.watermark,
            "ingested_count": self.ingested_count,
            "punctuation_injected": self.punctuation_injected,
            "last_ets_round": self.last_ets_round,
            "throttled_count": self.throttled_count,
        }
        if self.throttle is not None:
            state["throttle"] = self.throttle.snapshot_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise TimestampError(f"unsupported SourceNode state: {state!r}")
        self.last_data_ts = state["last_data_ts"]
        self.last_arrival_wall = state["last_arrival_wall"]
        self.watermark = state["watermark"]
        self.ingested_count = state["ingested_count"]
        self.punctuation_injected = state["punctuation_injected"]
        self.last_ets_round = state["last_ets_round"]
        self.throttled_count = state.get("throttled_count", 0)
        throttle_state = state.get("throttle")
        if throttle_state is not None and self.throttle is not None:
            self.throttle.restore_state(throttle_state)

    # ------------------------------------------------------------------ #
    # Upstream feedback

    def on_feedback(self, feedback, now: float):
        """Forward feedback to the admission throttle (AIMD endpoint).

        Sources terminate the upstream propagation, so the return value is
        the unchanged assertion (nothing lies further upstream to receive
        it).
        """
        if self.throttle is not None:
            self.throttle.on_feedback(feedback)
        return feedback

    # ------------------------------------------------------------------ #
    # Operator contract (sources never execute)

    def more(self) -> bool:
        return False

    def execute_step(self, ctx: OpContext) -> StepResult:  # pragma: no cover
        raise NotImplementedError(f"source {self.name!r} is not executable")
