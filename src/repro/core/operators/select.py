"""Selection (filter) operator.

The paper's experimental query (Fig. 4) filters each input stream through a
selection with 95 % selectivity before the union; this operator is that
filter.  Tuples failing the predicate are consumed and dropped; punctuation
passes through (handled by :class:`StatelessOperator`), which is essential —
a dropped tuple's timestamp information must still reach the union.
"""

from __future__ import annotations

from typing import Any, Callable

from ..columnar import ColumnarBlock, FieldPredicate
from ..tuples import DataTuple
from .base import OpContext
from .stateless import StatelessOperator

__all__ = ["Select"]


class Select(StatelessOperator):
    """Emit only the tuples whose payload satisfies ``predicate``.

    Attributes:
        passed / dropped: Running selectivity statistics.
    """

    def __init__(self, name: str, predicate: Callable[[Any], bool],
                 *, output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        self.predicate = predicate
        self.passed = 0
        self.dropped = 0

    def apply(self, tup: DataTuple, ctx: OpContext) -> list[DataTuple]:
        if self.predicate(tup.payload):
            self.passed += 1
            return [tup]
        self.dropped += 1
        return []

    def apply_block(self, block: ColumnarBlock,
                    ctx: OpContext) -> ColumnarBlock | None:
        """Columnar filter: one pass producing a narrowed selection vector.

        No rows are copied — the output block shares the input's arrays.  A
        structured :class:`~repro.core.columnar.FieldPredicate` is evaluated
        vectorized over the field column (numpy permitting); arbitrary
        callables are applied per row in row order, exactly like the scalar
        path.
        """
        predicate = self.predicate
        if isinstance(predicate, FieldPredicate):
            out = block.with_selection(predicate.select_indices(block))
        else:
            out = block.filter(predicate)
        kept = out.count
        self.passed += kept
        self.dropped += block.count - kept
        return out if kept else None

    @property
    def observed_selectivity(self) -> float:
        """Fraction of data tuples that passed (nan before any input)."""
        total = self.passed + self.dropped
        if not total:
            return float("nan")
        return self.passed / total
