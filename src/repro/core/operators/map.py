"""Map (generic transform) and FlatMap operators.

``Map`` applies a user function to every payload, emitting exactly one output
tuple per input tuple with the same timestamp.  ``FlatMap`` may emit zero or
more payloads per input, which subsumes both selection and record expansion;
it exists mostly for the mini query language and user extensions (Stream
Mill's selling point is user-defined aggregates and transforms).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..columnar import ColumnarBlock
from ..tuples import DataTuple
from .base import OpContext
from .stateless import StatelessOperator

__all__ = ["Map", "FlatMap"]


class Map(StatelessOperator):
    """Emit ``fn(payload)`` for every data tuple, timestamp preserved."""

    def __init__(self, name: str, fn: Callable[[Any], Any], *, output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        self.fn = fn

    def apply(self, tup: DataTuple, ctx: OpContext) -> list[DataTuple]:
        return [tup.with_payload(self.fn(tup.payload))]

    def apply_block(self, block: ColumnarBlock,
                    ctx: OpContext) -> ColumnarBlock | None:
        """Columnar map: rewrite only the payloads column, rows untouched."""
        return block.map_payloads(self.fn)


class FlatMap(StatelessOperator):
    """Emit one tuple per payload produced by ``fn(payload)``.

    ``fn`` returns an iterable of payloads; all outputs share the input
    tuple's timestamp, so stream order is preserved.
    """

    def __init__(self, name: str, fn: Callable[[Any], Iterable[Any]],
                 *, output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        self.fn = fn

    def apply(self, tup: DataTuple, ctx: OpContext) -> list[DataTuple]:
        return [tup.with_payload(p) for p in self.fn(tup.payload)]
