"""Reorder: restore timestamp order over an out-of-order input.

The engine's ordered-streams invariant (paper Section 1) is load-bearing:
union and join gate on it.  Real externally timestamped feeds, however, can
deliver tuples slightly out of order — the problem studied by Srivastava &
Widom (PODS'04, the paper's reference [12]), whose skew-bound machinery the
paper reuses for ETS values.  This operator closes the loop: place it
between an out-of-order source and the IWP operators, and everything
downstream sees an ordered stream again.

Mechanics: arriving tuples park in a min-heap keyed by timestamp.  A tuple
becomes *safe to emit* once the operator can prove nothing smaller can still
arrive —

* **slack rule**: the stream's disorder is bounded by ``slack`` seconds, so
  everything with ``ts ≤ max_seen − slack`` is safe;
* **punctuation rule**: a punctuation stamped ``p`` asserts no future
  element below ``p``, so everything with ``ts ≤ p`` is safe (this is how
  on-demand ETS drains the reorder buffer of a silent stream).

Tuples arriving below the already-emitted watermark are *late*; they are
counted and, by default, dropped (``late="drop"``), or the operator can
raise (``late="error"``) for pipelines that must not lose data.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left

from ..columnar import ColumnarBlock
from ..errors import ExecutionError, TimestampError
from ..tuples import DataTuple, LATENT_TS, Punctuation, StreamElement
from .base import BatchResult, Operator, OpContext, StepResult

__all__ = ["Reorder"]

#: Sorts after any real sequence number in (ts, seq, ...) bisection keys.
_SEQ_INF = float("inf")


class Reorder(Operator):
    """Buffered sort with bounded slack (one input, one ordered output).

    Args:
        slack: Upper bound, in stream seconds, on how far behind the
            largest seen timestamp a future tuple can arrive.
        late: ``"drop"`` (count and discard) or ``"error"`` (raise
            :class:`TimestampError`) for tuples below the emitted watermark.

    Attributes:
        late_dropped: Tuples discarded for arriving below the watermark.
        pending: Number of tuples currently parked in the heap.
    """

    is_iwp = False
    arity = 1

    def __init__(self, name: str, slack: float, *, late: str = "drop",
                 output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        if slack < 0:
            raise ExecutionError(f"reorder {name!r}: slack must be >= 0")
        if late not in ("drop", "error"):
            raise ExecutionError(
                f"reorder {name!r}: late must be 'drop' or 'error', "
                f"got {late!r}"
            )
        self.slack = float(slack)
        #: The configured slack — the value feedback-driven narrowing
        #: recovers toward when pressure relieves.
        self.base_slack = float(slack)
        self.late_policy = late
        self._heap: list[tuple[float, int, DataTuple]] = []
        #: Columnar parking: sorted ``(ts, seq)`` runs of parked rows, kept
        #: as zero-copy selections over drained input blocks.  Logically
        #: part of the same pool as :attr:`_heap` — eviction merges both —
        #: but rows parked by the block path never pay per-tuple heap churn.
        self._runs: list[ColumnarBlock] = []
        self._max_seen = LATENT_TS
        self._emitted_watermark = LATENT_TS
        self.late_dropped = 0

    #: Fraction of ``base_slack`` surrendered at full pressure (1.0).  A
    #: narrower slack parks fewer tuples and emits earlier — trading late-
    #: drop risk for memory and latency while the system is overloaded.
    FEEDBACK_NARROWING = 0.5

    @property
    def supports_blocks(self) -> bool:  # type: ignore[override]
        """Columnar eligibility: the default ``late="drop"`` policy only.
        ``late="error"`` must stop consuming at the exact offending tuple
        (nothing after it may be taken from the buffer), which is inherently
        per-element; it keeps the scalar fallback path."""
        return self.late_policy == "drop"

    @property
    def pending(self) -> int:
        return len(self._heap) + sum(run.count for run in self._runs)

    def frontier_floor(self) -> float | None:
        """Earliest parked timestamp, or None when nothing is parked.

        Part of the sharding frontier protocol (:mod:`repro.shard`): a
        parked tuple may be emitted below the source horizon later, so a
        shard's advertised frontier must not pass it.
        """
        floor = self._heap[0][0] if self._heap else None
        for run in self._runs:
            head = run.head_ts
            if floor is None or head < floor:
                floor = head
        return floor

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of the parked heap and watermarks.

        Heap entries keep their ``(ts, seq, tuple)`` shape — sequence
        numbers are the tie-breakers, and recovery bumps the global counter
        past every restored seq so post-restore arrivals sort after them.
        """
        return {
            "version": 1,
            "heap": list(self._heap) + [
                (tup.ts, tup.seq, tup)
                for run in self._runs for tup in run.to_tuples()
            ],
            "max_seen": self._max_seen,
            "emitted_watermark": self._emitted_watermark,
            "late_dropped": self.late_dropped,
            "slack": self.slack,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(f"unsupported Reorder state: {state!r}")
        self._heap = list(state["heap"])
        heapq.heapify(self._heap)
        self._runs = []
        self._max_seen = state["max_seen"]
        self._emitted_watermark = state["emitted_watermark"]
        self.late_dropped = state["late_dropped"]
        self.slack = state.get("slack", self.slack)

    # ------------------------------------------------------------------ #
    # Upstream feedback

    def on_feedback(self, feedback, now: float):
        """Narrow slack under pressure, recover toward base slack on relief.

        At pressure ``p`` the live slack becomes
        ``base_slack * (1 - FEEDBACK_NARROWING * p)``; each relief beat
        closes half the remaining gap back to ``base_slack`` (snapping when
        within 1%), so order tolerance returns gradually rather than
        re-inflating the heap in one step.
        """
        if feedback.is_relief:
            gap = self.base_slack - self.slack
            self.slack = (self.base_slack if gap <= 0.01 * self.base_slack
                          else self.base_slack - gap * 0.5)
        else:
            pressure = min(1.0, max(0.0, feedback.pressure))
            self.slack = self.base_slack * (
                1.0 - self.FEEDBACK_NARROWING * pressure)
        return feedback

    # ------------------------------------------------------------------ #

    def _flush_to(self, threshold: float) -> int:
        """Emit every parked tuple with ts ≤ ``threshold``; returns count."""
        emitted = 0
        while self._heap and self._heap[0][0] <= threshold:
            _, _, tup = heapq.heappop(self._heap)
            self.emit(tup)
            emitted += 1
        if threshold > self._emitted_watermark:
            self._emitted_watermark = threshold
        return emitted

    def _adopt_runs(self) -> None:
        """Fold columnar-parked runs back into the scalar heap.

        Defensive bridge for mode switches (an operator driven in block
        mode, then scalar — e.g. after a checkpoint restore into a scalar
        engine): the scalar step must see every parked tuple."""
        heap = self._heap
        for run in self._runs:
            for tup in run.to_tuples():
                heapq.heappush(heap, (tup.ts, tup.seq, tup))
        self._runs.clear()

    def execute_step(self, ctx: OpContext) -> StepResult:
        if self._runs:
            self._adopt_runs()
        element = self.inputs[0].pop()

        if element.is_punctuation:
            if element.ts < self._emitted_watermark:
                # Stale punctuation: everything it could release is already
                # out, and forwarding it would break output order.
                return StepResult(consumed=element)
            emitted = self._flush_to(element.ts)
            self.emit_punctuation(element)
            return StepResult(consumed=element, emitted_data=emitted,
                              emitted_punctuation=1)

        assert isinstance(element, DataTuple)
        if element.is_latent:
            # Latent streams carry no order to restore: pass through.
            self.emit(element)
            return StepResult(consumed=element, emitted_data=1)

        if element.ts < self._emitted_watermark:
            if self.late_policy == "error":
                raise TimestampError(
                    f"reorder {self.name!r}: tuple at {element.ts} arrived "
                    f"after watermark {self._emitted_watermark} "
                    f"(slack {self.slack} too small for this stream)"
                )
            self.late_dropped += 1
            return StepResult(consumed=element)

        heapq.heappush(self._heap, (element.ts, element.seq, element))
        if element.ts > self._max_seen:
            self._max_seen = element.ts
        emitted = self._flush_to(self._max_seen - self.slack)
        return StepResult(consumed=element, emitted_data=emitted,
                          probes=len(self._heap))

    # ------------------------------------------------------------------ #
    # Columnar path

    def execute_block(self, ctx: OpContext, limit: int) -> BatchResult:
        """Columnar reorder: park rows as sorted runs, evict by threshold.

        The scalar path pays an object-heap push per tuple and a pop + emit
        per released tuple.  Here a drained block is processed with float
        arithmetic only — per-row late detection against the evolving
        watermark, running ``max_seen``, and a shadow timestamp heap that
        reproduces the exact scalar per-row ``probes``/release counts — and
        the releases themselves are *coalesced*: the concatenation of the
        scalar per-row flush batches over a run of data rows equals the
        global ``(ts, seq)`` order of everything released (each flush emits
        every parked tuple below its non-decreasing threshold, and a tuple
        arriving below an earlier threshold would have been dropped as
        late), so one merge of sorted runs per boundary replaces per-tuple
        heap churn.  Boundaries — where pending releases must materialize
        to preserve emission order — are latent passthroughs, punctuation,
        and the end of each drained block.  Rows still parked stay as
        zero-copy selections over the drained block in :attr:`_runs`.
        """
        if self.late_policy != "drop":  # pragma: no cover - gated upstream
            return super().execute_batch(ctx, limit)
        batch = BatchResult()
        buf = self.inputs[0]
        staged: list[ColumnarBlock | StreamElement] = []
        # Shadow heap of parked timestamps: scalar probes are "heap size
        # after flush" and scalar releases are "pops at this row"; floats
        # through C heapq reproduce both without touching payloads.
        shadow = [entry[0] for entry in self._heap]
        for run in self._runs:
            ts_col = run.ts
            shadow.extend(ts_col[i] for i in run.indices())
        heapq.heapify(shadow)
        heappush, heappop = heapq.heappush, heapq.heappop
        wm = self._emitted_watermark
        max_seen = self._max_seen
        slack = self.slack
        threshold = LATENT_TS  # largest flush threshold applied this call
        while batch.steps < limit:
            if buf.head_is_punctuation():
                element = buf.pop()
                batch.steps += 1
                batch.consumed_punctuation += 1
                if element.ts >= wm:
                    emitted = self._evict(None, [], element.ts, staged)
                    if element.ts > wm:
                        wm = element.ts
                    staged.append(element.reformatted(origin=self.name))
                    batch.emitted_data += emitted
                    batch.emitted_punctuation += 1
                # Stale or not, punctuation is a batch boundary.
                break
            block = buf.drain_block(limit - batch.steps)
            if block is None:
                break
            positions = list(block.indices())
            ts_col, seq_col = block.ts, block.seq
            parked: list[tuple[float, int, int]] = []  # (ts, seq, physical)
            best = LATENT_TS
            for pos, i in enumerate(positions):
                ts = ts_col[i]
                if ts == LATENT_TS:
                    # Latent passthrough sits between flush batches:
                    # materialize pending releases, then the tuple itself.
                    self._evict(block, parked, threshold, staged)
                    parked = []
                    staged.append(block.row(pos))
                    batch.steps += 1
                    batch.consumed_data += 1
                    batch.emitted_data += 1
                    continue
                if ts > best:
                    best = ts
                batch.steps += 1
                batch.consumed_data += 1
                if ts < wm:
                    self.late_dropped += 1
                    continue
                heappush(shadow, ts)
                if ts > max_seen:
                    max_seen = ts
                bound = max_seen - slack
                released = 0
                while shadow and shadow[0] <= bound:
                    heappop(shadow)
                    released += 1
                batch.emitted_data += released
                batch.probes += len(shadow)
                parked.append((ts, seq_col[i], i))
                if bound > threshold:
                    threshold = bound
                if bound > wm:
                    wm = bound
            self._evict(block, parked, threshold, staged)
            if best != LATENT_TS:
                # A pop-by-pop consumption tops the register up with every
                # timestamp it sees; the drain already recorded the run's
                # last stamp, which for an out-of-order input need not be
                # its largest.
                buf.register.update(best)
        self._emitted_watermark = wm
        self._max_seen = max_seen
        for entry in staged:
            if isinstance(entry, ColumnarBlock):
                for out in self.outputs:
                    out.push_block(entry)
            else:
                for out in self.outputs:
                    out.push(entry)
        return batch

    def _evict(self, block: ColumnarBlock | None,
               parked: list[tuple[float, int, int]], threshold: float,
               staged: list[ColumnarBlock | StreamElement]) -> int:
        """Release every parked tuple with ts ≤ ``threshold`` into
        ``staged`` in global ``(ts, seq)`` order; park the rest.

        ``parked`` holds this block's surviving arrivals as ``(ts, seq,
        physical index)`` triples; rows above the threshold become one new
        sorted run (a selection over ``block``, zero copies).  Release
        sources — the scalar heap, previous runs' prefixes, and this
        block's below-threshold rows — are each already sorted, so a
        single-source release stages zero-copy and multi-source releases
        are one :func:`heapq.merge`.  Returns the number released.
        """
        if parked:
            parked.sort()
            cut = bisect_left(parked, (threshold, _SEQ_INF))
        else:
            cut = 0
        heap = self._heap
        need_heap = bool(heap) and heap[0][0] <= threshold
        need_runs = any(run.head_ts <= threshold for run in self._runs)
        if not cut and not need_heap and not need_runs:
            if parked:
                self._runs.append(
                    block.with_selection([entry[2] for entry in parked]))
            return 0
        sources: list[ColumnarBlock | list[tuple[float, int, DataTuple]]] = []
        if need_heap:
            popped: list[tuple[float, int, DataTuple]] = []
            while heap and heap[0][0] <= threshold:
                popped.append(heapq.heappop(heap))
            sources.append(popped)
        if need_runs:
            kept: list[ColumnarBlock] = []
            for run in self._runs:
                head, tail = run.split_below(threshold, inclusive=True)
                if head.count:
                    sources.append(head)
                if tail is not None and tail.count:
                    kept.append(tail)
            self._runs = kept
        if cut:
            sources.append(
                block.with_selection([entry[2] for entry in parked[:cut]]))
        if cut < len(parked):
            self._runs.append(
                block.with_selection([entry[2] for entry in parked[cut:]]))
        if len(sources) == 1:
            src = sources[0]
            if isinstance(src, ColumnarBlock):
                staged.append(src)
                return src.count
            staged.append(ColumnarBlock.from_tuples([t for _, _, t in src]))
            return len(src)
        triples: list[list[tuple[float, int, DataTuple]]] = [
            src if isinstance(src, list)
            else [(t.ts, t.seq, t) for t in src.to_tuples()]
            for src in sources
        ]
        merged = [t for _, _, t in heapq.merge(*triples)]
        staged.append(ColumnarBlock.from_tuples(merged))
        return len(merged)
