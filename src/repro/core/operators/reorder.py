"""Reorder: restore timestamp order over an out-of-order input.

The engine's ordered-streams invariant (paper Section 1) is load-bearing:
union and join gate on it.  Real externally timestamped feeds, however, can
deliver tuples slightly out of order — the problem studied by Srivastava &
Widom (PODS'04, the paper's reference [12]), whose skew-bound machinery the
paper reuses for ETS values.  This operator closes the loop: place it
between an out-of-order source and the IWP operators, and everything
downstream sees an ordered stream again.

Mechanics: arriving tuples park in a min-heap keyed by timestamp.  A tuple
becomes *safe to emit* once the operator can prove nothing smaller can still
arrive —

* **slack rule**: the stream's disorder is bounded by ``slack`` seconds, so
  everything with ``ts ≤ max_seen − slack`` is safe;
* **punctuation rule**: a punctuation stamped ``p`` asserts no future
  element below ``p``, so everything with ``ts ≤ p`` is safe (this is how
  on-demand ETS drains the reorder buffer of a silent stream).

Tuples arriving below the already-emitted watermark are *late*; they are
counted and, by default, dropped (``late="drop"``), or the operator can
raise (``late="error"``) for pipelines that must not lose data.
"""

from __future__ import annotations

import heapq

from ..errors import ExecutionError, TimestampError
from ..tuples import DataTuple, LATENT_TS, Punctuation
from .base import Operator, OpContext, StepResult

__all__ = ["Reorder"]


class Reorder(Operator):
    """Buffered sort with bounded slack (one input, one ordered output).

    Args:
        slack: Upper bound, in stream seconds, on how far behind the
            largest seen timestamp a future tuple can arrive.
        late: ``"drop"`` (count and discard) or ``"error"`` (raise
            :class:`TimestampError`) for tuples below the emitted watermark.

    Attributes:
        late_dropped: Tuples discarded for arriving below the watermark.
        pending: Number of tuples currently parked in the heap.
    """

    is_iwp = False
    arity = 1

    def __init__(self, name: str, slack: float, *, late: str = "drop",
                 output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        if slack < 0:
            raise ExecutionError(f"reorder {name!r}: slack must be >= 0")
        if late not in ("drop", "error"):
            raise ExecutionError(
                f"reorder {name!r}: late must be 'drop' or 'error', "
                f"got {late!r}"
            )
        self.slack = float(slack)
        #: The configured slack — the value feedback-driven narrowing
        #: recovers toward when pressure relieves.
        self.base_slack = float(slack)
        self.late_policy = late
        self._heap: list[tuple[float, int, DataTuple]] = []
        self._max_seen = LATENT_TS
        self._emitted_watermark = LATENT_TS
        self.late_dropped = 0

    #: Fraction of ``base_slack`` surrendered at full pressure (1.0).  A
    #: narrower slack parks fewer tuples and emits earlier — trading late-
    #: drop risk for memory and latency while the system is overloaded.
    FEEDBACK_NARROWING = 0.5

    @property
    def pending(self) -> int:
        return len(self._heap)

    def frontier_floor(self) -> float | None:
        """Earliest parked timestamp, or None when the heap is empty.

        Part of the sharding frontier protocol (:mod:`repro.shard`): a
        parked tuple may be emitted below the source horizon later, so a
        shard's advertised frontier must not pass it.
        """
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of the parked heap and watermarks.

        Heap entries keep their ``(ts, seq, tuple)`` shape — sequence
        numbers are the tie-breakers, and recovery bumps the global counter
        past every restored seq so post-restore arrivals sort after them.
        """
        return {
            "version": 1,
            "heap": list(self._heap),
            "max_seen": self._max_seen,
            "emitted_watermark": self._emitted_watermark,
            "late_dropped": self.late_dropped,
            "slack": self.slack,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(f"unsupported Reorder state: {state!r}")
        self._heap = list(state["heap"])
        heapq.heapify(self._heap)
        self._max_seen = state["max_seen"]
        self._emitted_watermark = state["emitted_watermark"]
        self.late_dropped = state["late_dropped"]
        self.slack = state.get("slack", self.slack)

    # ------------------------------------------------------------------ #
    # Upstream feedback

    def on_feedback(self, feedback, now: float):
        """Narrow slack under pressure, recover toward base slack on relief.

        At pressure ``p`` the live slack becomes
        ``base_slack * (1 - FEEDBACK_NARROWING * p)``; each relief beat
        closes half the remaining gap back to ``base_slack`` (snapping when
        within 1%), so order tolerance returns gradually rather than
        re-inflating the heap in one step.
        """
        if feedback.is_relief:
            gap = self.base_slack - self.slack
            self.slack = (self.base_slack if gap <= 0.01 * self.base_slack
                          else self.base_slack - gap * 0.5)
        else:
            pressure = min(1.0, max(0.0, feedback.pressure))
            self.slack = self.base_slack * (
                1.0 - self.FEEDBACK_NARROWING * pressure)
        return feedback

    # ------------------------------------------------------------------ #

    def _flush_to(self, threshold: float) -> int:
        """Emit every parked tuple with ts ≤ ``threshold``; returns count."""
        emitted = 0
        while self._heap and self._heap[0][0] <= threshold:
            _, _, tup = heapq.heappop(self._heap)
            self.emit(tup)
            emitted += 1
        if threshold > self._emitted_watermark:
            self._emitted_watermark = threshold
        return emitted

    def execute_step(self, ctx: OpContext) -> StepResult:
        element = self.inputs[0].pop()

        if element.is_punctuation:
            if element.ts < self._emitted_watermark:
                # Stale punctuation: everything it could release is already
                # out, and forwarding it would break output order.
                return StepResult(consumed=element)
            emitted = self._flush_to(element.ts)
            self.emit_punctuation(element)
            return StepResult(consumed=element, emitted_data=emitted,
                              emitted_punctuation=1)

        assert isinstance(element, DataTuple)
        if element.is_latent:
            # Latent streams carry no order to restore: pass through.
            self.emit(element)
            return StepResult(consumed=element, emitted_data=1)

        if element.ts < self._emitted_watermark:
            if self.late_policy == "error":
                raise TimestampError(
                    f"reorder {self.name!r}: tuple at {element.ts} arrived "
                    f"after watermark {self._emitted_watermark} "
                    f"(slack {self.slack} too small for this stream)"
                )
            self.late_dropped += 1
            return StepResult(consumed=element)

        heapq.heappush(self._heap, (element.ts, element.seq, element))
        if element.ts > self._max_seen:
            self._max_seen = element.ts
        emitted = self._flush_to(self._max_seen - self.slack)
        return StepResult(consumed=element, emitted_data=emitted,
                          probes=len(self._heap))
