"""Symmetric window join — the paper's second Idle-Waiting-Prone operator.

Semantics follow Kang, Naughton and Viglas (ICDE 2003), as adopted by the
paper (Fig. 1), extended with TSM registers and punctuation handling
(Fig. 6):

* With τ the minimum over the two input TSM registers, when input A holds a
  **data** tuple stamped τ: join it against the window ``W(B)``, emit the
  results stamped τ, then move the tuple into ``W(A)`` (expiring old tuples).
  Symmetrically for B.
* When the element stamped τ is a **punctuation**: consume it; if no data
  tuple stamped τ remains on either input, emit a punctuation stamped τ so
  ETS information keeps flowing to IWP operators down the path.
* Punctuation also advances window expiry, which is one of the ways ETS
  reduces memory usage.

Latent tuples are stamped with the clock on arrival at the join ("individual
query operators that require timestamps", paper Section 5), after which they
behave as internal-timestamped data.

Asymmetric joins are supported by passing a window spec for only one side;
multi-way joins are built as cascades of binary joins by
:func:`repro.core.graph.chain_joins`.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Callable

from ..buffers import StreamBuffer
from ..errors import ExecutionError
from ..tuples import LATENT_TS, DataTuple, Punctuation
from ..windows import (
    CountWindow,
    IndexedCountWindow,
    IndexedTimeWindow,
    TimeWindow,
    WindowSpec,
)
from .base import BatchResult, Operator, OpContext, StepResult

__all__ = ["WindowJoin", "merge_payloads"]


def merge_payloads(left: Any, right: Any,
                   left_prefix: str = "l_", right_prefix: str = "r_") -> dict:
    """Default join combiner: merge two mapping payloads into one record.

    Non-colliding keys are kept as-is.  A colliding key whose two values are
    equal (the equi-join key itself, typically) is kept once, unprefixed;
    genuinely conflicting values are disambiguated with the given prefixes.
    Non-mapping payloads are wrapped under the prefixes.
    """
    if not isinstance(left, Mapping):
        left = {left_prefix.rstrip("_") or "left": left}
    if not isinstance(right, Mapping):
        right = {right_prefix.rstrip("_") or "right": right}
    merged = dict(left)
    for key, value in right.items():
        if key in merged and merged[key] != value:
            merged[f"{left_prefix}{key}"] = merged.pop(key)
            merged[f"{right_prefix}{key}"] = value
        else:
            merged[key] = value
    return merged


class _EmptyWindow:
    """Window stub for the unstored side of an asymmetric join.

    Implements the *full* :class:`~repro.core.windows.WindowProtocol` —
    including the indexed path's ``probe(key)`` — so a join may treat both
    sides uniformly and neither execution path can diverge on a missing
    attribute.  Every read yields the same answer an always-empty window
    would give; every write is a no-op.
    """

    __slots__ = ()

    span = 0.0

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def insert(self, tup: DataTuple) -> None:
        pass

    def expire(self, now: float) -> int:
        return 0

    def matches(self, probe_ts: float):
        """Same contract as the real windows: an iterator of candidates."""
        return iter(())

    def probe(self, key: Any):
        """Indexed-path contract: the (empty) bucket for ``key``."""
        return iter(())


class WindowJoin(Operator):
    """Binary symmetric (or asymmetric) window join over timestamped streams.

    Args:
        name: Node name.
        window: Window spec applied to both sides (symmetric join).
        predicate: ``predicate(left_payload, right_payload) -> bool``; when
            None, every window pair matches (cross product within windows).
        key: Convenience equi-join: a field name (or per-side pair of field
            names) compared for equality; composed with ``predicate`` if both
            are given.  Keyed symmetric joins get the hash-indexed fast path
            (see ``indexed``).
        window_left / window_right: Per-side specs overriding ``window``;
            pass None (with the other set) for an asymmetric join.
        combiner: Builds the output payload from the two matching payloads
            (left payload first, regardless of which side probed).
        strict: Use the original Fig.-1 gating (both inputs nonempty) instead
            of the relaxed TSM condition — for the X1 ablation.
        indexed: Window-state layout.  None (default) auto-selects: keyed
            symmetric non-strict joins store tuples in per-key hash buckets
            and probe only the matching bucket (O(bucket) per probe);
            everything else — non-equi predicates without a key, asymmetric
            joins, and the strict X1 ablation — keeps the O(window) scan
            layout, byte-identically to previous behaviour.  False forces
            the scan layout for a keyed join (differential testing /
            ablation); True demands the fast path and raises
            :class:`ExecutionError` when the join is not eligible.
            Indexed joins require hashable key values.
        adaptive: Per-probe layout choice for indexed joins.  At low key
            cardinality a bucket probe loses to the plain scan (the bucket
            *is* most of the window, and the hash lookup is pure overhead —
            BENCH_join.json measures 0.93x at cardinality 4), so an adaptive
            join consults the opposite window's live ``bucket_count`` before
            each probe and falls back to the scan walk while it sits below
            ``adaptive_threshold``.  Both paths yield candidates in
            insertion order, so outputs stay byte-identical either way.
            None (default) enables adaptivity exactly when the *layout* was
            auto-selected (``indexed=None``); an explicit ``indexed=True``
            pins pure bucket probing unless ``adaptive=True`` is also
            passed.  ``adaptive=True`` on a join that is not
            indexed-eligible raises :class:`ExecutionError`.
        adaptive_threshold: Live-bucket count at or above which the
            adaptive join probes buckets instead of scanning (default 8 —
            above the measured break-even of the benchmark's cardinality
            sweep).
    """

    is_iwp = True
    arity = 2

    def __init__(self, name: str, window: WindowSpec | None = None, *,
                 predicate: Callable[[Any, Any], bool] | None = None,
                 key: str | tuple[str, str] | None = None,
                 window_left: WindowSpec | None = None,
                 window_right: WindowSpec | None = None,
                 combiner: Callable[[Any, Any], Any] = merge_payloads,
                 strict: bool = False,
                 indexed: bool | None = None,
                 adaptive: bool | None = None,
                 adaptive_threshold: int = 8,
                 output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        if window is None and window_left is None and window_right is None:
            raise ExecutionError(
                f"join {name!r}: at least one side needs a window spec"
            )
        left_spec = window_left if window_left is not None else window
        right_spec = window_right if window_right is not None else window
        self.key = key
        self.key_fields: tuple[str, str] | None = None
        if key is not None:
            self.key_fields = (key, key) if isinstance(key, str) else tuple(key)
        #: The caller's raw predicate, applied per candidate on *both* paths
        #: (the scan path composes it with the key check; the indexed path
        #: replaces the key check with the bucket lookup).
        self.base_predicate = predicate
        eligible = (self.key_fields is not None and not strict
                    and left_spec is not None and right_spec is not None)
        if indexed is True and not eligible:
            raise ExecutionError(
                f"join {name!r}: indexed=True requires key columns, "
                "windows on both sides, and non-strict gating"
            )
        self.indexed = eligible if indexed is None else bool(indexed and eligible)
        if adaptive is True and not self.indexed:
            raise ExecutionError(
                f"join {name!r}: adaptive=True requires an indexed-eligible "
                "join (key columns, windows on both sides, non-strict gating)"
            )
        if adaptive_threshold < 0:
            raise ExecutionError(
                f"join {name!r}: adaptive_threshold must be >= 0, "
                f"got {adaptive_threshold}"
            )
        # Adaptivity defaults on only when the layout itself was
        # auto-selected; an explicit indexed=True is a pinned choice.
        self.adaptive = (self.indexed and indexed is None
                         if adaptive is None else bool(adaptive))
        self.adaptive_threshold = adaptive_threshold
        if self.indexed:
            left_key, right_key = self.key_fields
            self.windows: list[TimeWindow | CountWindow | IndexedTimeWindow
                               | IndexedCountWindow | _EmptyWindow] = [
                left_spec.build(key_fn=lambda p: p[left_key]),
                right_spec.build(key_fn=lambda p: p[right_key]),
            ]
        else:
            self.windows = [
                left_spec.build() if left_spec is not None else _EmptyWindow(),
                right_spec.build() if right_spec is not None else _EmptyWindow(),
            ]
        self.predicate = predicate
        if key is not None:
            left_key, right_key = self.key_fields
            base = predicate

            def key_predicate(lp: Any, rp: Any) -> bool:
                if lp[left_key] != rp[right_key]:
                    return False
                return base(lp, rp) if base is not None else True

            self.predicate = key_predicate
        self.combiner = combiner
        self.strict = strict
        self._last_emitted_ts = LATENT_TS
        self._gate_cache: tuple[list[float], float] | None = None
        self.matches_emitted = 0
        self.indexed_probes = 0
        self.scan_probes = 0
        self.punctuation_consumed = 0
        self.punctuation_forwarded = 0
        self.punctuation_suppressed = 0
        self.tuples_processed = 0

    def attach_input(self, buffer: StreamBuffer, producer) -> None:
        super().attach_input(buffer, producer)
        # Cached-τ invalidation: the TSM gate minimum changes only when an
        # input buffer's head or register moves, and both only move through
        # buffer mutations — so one hook per input replaces the repeated
        # min-over-peeks in more()/stalled_input_index()/_select_index().
        buffer.on_change = self._invalidate_gates

    def _invalidate_gates(self) -> None:
        self._gate_cache = None

    # ------------------------------------------------------------------ #
    # Gating (relaxed more condition of paper Fig. 5)

    def _gates_tau(self) -> tuple[list[float], float]:
        """The per-input TSM gates and their minimum τ, cached.

        The cache is invalidated by the input buffers' ``on_change`` hooks,
        so within one execution step (``more`` → ``_select_index`` →
        punctuation handling) the gates are computed once instead of three
        times, and an unchanged join re-polled by the engine costs one
        tuple-unpack.
        """
        cache = self._gate_cache
        if cache is None:
            gates = [buf.gate_ts() for buf in self.inputs]
            cache = self._gate_cache = (gates, min(gates))
        return cache

    def _gates(self) -> list[float]:
        return self._gates_tau()[0]

    def _latent_ready_index(self) -> int | None:
        for i, buf in enumerate(self.inputs):
            head = buf.peek()
            if head is not None and head.is_latent:
                return i
        return None

    def more(self) -> bool:
        if self._latent_ready_index() is not None:
            return True
        if self.strict:
            return all(buf for buf in self.inputs)
        gates, tau = self._gates_tau()
        if tau == LATENT_TS:
            return False
        return any(buf.head_ts() == tau for buf in self.inputs)

    def stalled_input_index(self) -> int:
        if self.strict:
            for i, buf in enumerate(self.inputs):
                if buf.is_empty:
                    return i
            return 0
        gates, tau = self._gates_tau()
        for i, buf in enumerate(self.inputs):
            if buf.is_empty and gates[i] == tau:
                return i
        return min(range(len(gates)), key=gates.__getitem__)

    @property
    def window_size_total(self) -> int:
        """Total tuples currently stored across both window buffers."""
        return len(self.windows[0]) + len(self.windows[1])

    @property
    def probe_mode(self) -> str:
        """The configured probing strategy: scan, indexed, or adaptive."""
        if not self.indexed:
            return "scan"
        return "adaptive" if self.adaptive else "indexed"

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of both windows, the watermark, and counters.

        An :class:`_EmptyWindow` side snapshots as None — it carries no
        state, and the restored join rebuilds the same stub from its spec.
        """
        return {
            "version": 1,
            "windows": [
                None if isinstance(win, _EmptyWindow) else win.snapshot_state()
                for win in self.windows
            ],
            "last_emitted_ts": self._last_emitted_ts,
            "matches_emitted": self.matches_emitted,
            "indexed_probes": self.indexed_probes,
            "scan_probes": self.scan_probes,
            "punctuation_consumed": self.punctuation_consumed,
            "punctuation_forwarded": self.punctuation_forwarded,
            "punctuation_suppressed": self.punctuation_suppressed,
            "tuples_processed": self.tuples_processed,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(f"unsupported WindowJoin state: {state!r}")
        for win, win_state in zip(self.windows, state["windows"]):
            if win_state is None:
                if not isinstance(win, _EmptyWindow):
                    raise ExecutionError(
                        f"join {self.name!r}: snapshot has no state for a "
                        "stored window side (layout mismatch)")
            else:
                win.restore_state(win_state)
        self._last_emitted_ts = state["last_emitted_ts"]
        self._gate_cache = None
        self.matches_emitted = state["matches_emitted"]
        # Probe-path counters postdate version 1; old snapshots lack them.
        self.indexed_probes = state.get("indexed_probes", 0)
        self.scan_probes = state.get("scan_probes", 0)
        self.punctuation_consumed = state["punctuation_consumed"]
        self.punctuation_forwarded = state["punctuation_forwarded"]
        self.punctuation_suppressed = state["punctuation_suppressed"]
        self.tuples_processed = state["tuples_processed"]

    # ------------------------------------------------------------------ #
    # Execution (paper Fig. 6)

    def _select_index(self) -> int:
        latent_idx = self._latent_ready_index()
        if latent_idx is not None:
            return latent_idx
        if self.strict:
            heads = [(buf.head_ts(), i) for i, buf in enumerate(self.inputs)]
            return min(heads)[1]
        gates, tau = self._gates_tau()
        punct_idx: int | None = None
        for i, buf in enumerate(self.inputs):
            head = buf.peek()
            if head is None or head.ts != tau:
                continue
            if head.is_punctuation:
                punct_idx = punct_idx if punct_idx is not None else i
            else:
                return i
        if punct_idx is None:
            raise ExecutionError(
                f"join {self.name!r}: execute_step called without more()"
            )
        return punct_idx

    def execute_step(self, ctx: OpContext) -> StepResult:
        idx = self._select_index()
        element = self.inputs[idx].pop()

        if element.is_punctuation:
            return self._handle_punctuation(element)

        assert isinstance(element, DataTuple)
        if element.is_latent:
            element = element.stamped(ctx.clock.now())
        return self._handle_data(idx, element)

    def _handle_data(self, idx: int, tup: DataTuple) -> StepResult:
        other = 1 - idx
        own_window = self.windows[idx]
        other_window = self.windows[other]
        # Expire against the probing tuple's timestamp (Kang et al. order:
        # probe happens against the still-valid window contents).
        other_window.expire(tup.ts)
        if self.indexed and (
                not self.adaptive
                or other_window.bucket_count >= self.adaptive_threshold):
            # Equality fast path: the opposite window is key-partitioned, so
            # only the matching bucket is examined.  Bucket membership *is*
            # the key equality check, leaving just the caller's residual
            # predicate per candidate.
            candidates = other_window.probe(tup.payload[self.key_fields[idx]])
            predicate = self.base_predicate
            self.indexed_probes += 1
        else:
            # Scan walk — either the scan layout, or an adaptive indexed
            # join whose opposite window holds too few live buckets for the
            # hash lookup to pay for itself.  Indexed windows expose the
            # same matches() contract (every live tuple, timestamp order),
            # and self.predicate carries the key-equality check, so both
            # paths emit identical results.
            candidates = other_window.matches(tup.ts)
            predicate = self.predicate
            self.scan_probes += 1
        probes = 0
        emitted = 0
        for candidate in candidates:
            probes += 1
            left_payload, right_payload = (
                (tup.payload, candidate.payload) if idx == 0
                else (candidate.payload, tup.payload)
            )
            if predicate is not None and not predicate(left_payload,
                                                       right_payload):
                continue
            out = DataTuple(ts=tup.ts,
                            payload=self.combiner(left_payload, right_payload),
                            kind=tup.kind,
                            arrival_ts=latest_arrival(tup, candidate))
            self.emit(out)
            emitted += 1
        own_window.expire(tup.ts)
        own_window.insert(tup)
        self.tuples_processed += 1
        self.matches_emitted += emitted
        if tup.ts > self._last_emitted_ts and emitted:
            self._last_emitted_ts = tup.ts
        emitted_punct = 0
        if not emitted and not self.strict:
            # "When we cannot generate a data tuple, we simply produce a
            # punctuation tuple for the benefit of the IWP operators down the
            # path" (paper Section 4.2).
            tau = self._gates_tau()[1]
            if tau > self._last_emitted_ts:
                self.emit(Punctuation(ts=tau, origin=self.name))
                self._last_emitted_ts = tau
                self.punctuation_forwarded += 1
                emitted_punct = 1
        return StepResult(consumed=tup, probes=probes, probes_emitted=emitted,
                          emitted_data=emitted,
                          emitted_punctuation=emitted_punct)

    def execute_batch(self, ctx: OpContext, limit: int) -> BatchResult:
        """Micro-batched join: drain one side's run while it probes alone.

        While one input's head run stays strictly below the other input's
        gate timestamp, the scalar path would select that input on every
        iteration; the run is processed in a tight loop without re-deriving
        the full gating each time.  Probing work itself is inherently
        per-tuple and is charged as such through :attr:`BatchResult.probes`.
        """
        if self.strict:
            return super().execute_batch(ctx, limit)
        batch = BatchResult()
        inputs = self.inputs
        while batch.steps < limit:
            latent_idx = self._latent_ready_index()
            if latent_idx is not None:
                element = inputs[latent_idx].pop()
                assert isinstance(element, DataTuple)
                element = element.stamped(ctx.clock.now())
                batch.add_step(self._handle_data(latent_idx, element))
                continue
            gates, tau = self._gates_tau()
            if tau == LATENT_TS:
                break
            data_idx: int | None = None
            punct_idx: int | None = None
            for i, buf in enumerate(inputs):
                head = buf.peek()
                if head is None or head.ts != tau:
                    continue
                if head.is_punctuation:
                    if punct_idx is None:
                        punct_idx = i
                else:
                    data_idx = i
                    break
            if data_idx is not None:
                buf = inputs[data_idx]
                other_gate = gates[1 - data_idx]
                while batch.steps < limit:
                    element = buf.pop()
                    assert isinstance(element, DataTuple)
                    if element.is_latent:
                        element = element.stamped(ctx.clock.now())
                    batch.add_step(self._handle_data(data_idx, element))
                    head = buf.peek()
                    if head is None or head.is_punctuation:
                        break
                    ts = head.ts
                    if ts != LATENT_TS and ts >= other_gate:
                        break
                continue
            if punct_idx is not None:
                element = inputs[punct_idx].pop()
                batch.add_step(self._handle_punctuation(element))
                break  # punctuation is a batch boundary
            break  # no head at tau: more() is false
        return batch

    def _handle_punctuation(self, punct) -> StepResult:
        self.punctuation_consumed += 1
        # Punctuation advances time on its input: shrink both windows to the
        # new safe horizon (memory benefit of ETS).
        tau = punct.ts if self.strict else self._gates_tau()[1]
        for window in self.windows:
            window.expire(tau)
        if tau > self._last_emitted_ts:
            self.emit(Punctuation(ts=tau, origin=self.name,
                                  periodic=getattr(punct, "periodic", False)))
            self._last_emitted_ts = tau
            self.punctuation_forwarded += 1
            return StepResult(consumed=punct, emitted_punctuation=1)
        self.punctuation_suppressed += 1
        return StepResult(consumed=punct)


def latest_arrival(a: DataTuple, b: DataTuple) -> float:
    """Arrival stamp for a join result: the later of the two inputs'.

    A join result becomes derivable only once its *second* contributing
    tuple has entered the DSMS, so output latency — the idle-waiting delay
    the paper measures — is counted from the later arrival.  NaN stamps
    (never set) lose to real stamps.
    """
    fa, fb = a.arrival_ts, b.arrival_ts
    if fa != fa:  # NaN
        return fb
    if fb != fb:
        return fa
    return fa if fa >= fb else fb
