"""Symmetric window join — the paper's second Idle-Waiting-Prone operator.

Semantics follow Kang, Naughton and Viglas (ICDE 2003), as adopted by the
paper (Fig. 1), extended with TSM registers and punctuation handling
(Fig. 6):

* With τ the minimum over the two input TSM registers, when input A holds a
  **data** tuple stamped τ: join it against the window ``W(B)``, emit the
  results stamped τ, then move the tuple into ``W(A)`` (expiring old tuples).
  Symmetrically for B.
* When the element stamped τ is a **punctuation**: consume it; if no data
  tuple stamped τ remains on either input, emit a punctuation stamped τ so
  ETS information keeps flowing to IWP operators down the path.
* Punctuation also advances window expiry, which is one of the ways ETS
  reduces memory usage.

Latent tuples are stamped with the clock on arrival at the join ("individual
query operators that require timestamps", paper Section 5), after which they
behave as internal-timestamped data.

Asymmetric joins are supported by passing a window spec for only one side;
multi-way joins are built as cascades of binary joins by
:func:`repro.core.graph.chain_joins`.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Callable

from .. import tuples as _tuples
from ..buffers import StreamBuffer
from ..columnar import ColumnarBlock
from ..errors import ExecutionError
from ..tuples import LATENT_TS, DataTuple, Punctuation, StreamElement
from ..windows import (
    CountWindow,
    IndexedCountWindow,
    IndexedTimeWindow,
    TimeWindow,
    WindowSpec,
)
from .base import BatchResult, Operator, OpContext, StepResult

__all__ = ["WindowJoin", "merge_payloads"]

#: Sentinel distinguishing "no τ override" from any real gate value in
#: :meth:`WindowJoin._handle_data` (gates can legitimately be any float).
_NO_TAU = object()


def merge_payloads(left: Any, right: Any,
                   left_prefix: str = "l_", right_prefix: str = "r_") -> dict:
    """Default join combiner: merge two mapping payloads into one record.

    Non-colliding keys are kept as-is.  A colliding key whose two values are
    equal (the equi-join key itself, typically) is kept once, unprefixed;
    genuinely conflicting values are disambiguated with the given prefixes.
    Non-mapping payloads are wrapped under the prefixes.
    """
    if not isinstance(left, Mapping):
        left = {left_prefix.rstrip("_") or "left": left}
    if not isinstance(right, Mapping):
        right = {right_prefix.rstrip("_") or "right": right}
    merged = dict(left)
    for key, value in right.items():
        if key in merged and merged[key] != value:
            merged[f"{left_prefix}{key}"] = merged.pop(key)
            merged[f"{right_prefix}{key}"] = value
        else:
            merged[key] = value
    return merged


class _EmptyWindow:
    """Window stub for the unstored side of an asymmetric join.

    Implements the *full* :class:`~repro.core.windows.WindowProtocol` —
    including the indexed path's ``probe(key)`` — so a join may treat both
    sides uniformly and neither execution path can diverge on a missing
    attribute.  Every read yields the same answer an always-empty window
    would give; every write is a no-op.
    """

    __slots__ = ()

    span = 0.0

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def insert(self, tup: DataTuple) -> None:
        pass

    def insert_run(self, tuples) -> None:
        pass

    def expire(self, now: float) -> int:
        return 0

    def matches(self, probe_ts: float):
        """Same contract as the real windows: an iterator of candidates."""
        return iter(())

    def probe(self, key: Any):
        """Indexed-path contract: the (empty) bucket for ``key``."""
        return iter(())


class WindowJoin(Operator):
    """Binary symmetric (or asymmetric) window join over timestamped streams.

    Args:
        name: Node name.
        window: Window spec applied to both sides (symmetric join).
        predicate: ``predicate(left_payload, right_payload) -> bool``; when
            None, every window pair matches (cross product within windows).
        key: Convenience equi-join: a field name (or per-side pair of field
            names) compared for equality; composed with ``predicate`` if both
            are given.  Keyed symmetric joins get the hash-indexed fast path
            (see ``indexed``).
        window_left / window_right: Per-side specs overriding ``window``;
            pass None (with the other set) for an asymmetric join.
        combiner: Builds the output payload from the two matching payloads
            (left payload first, regardless of which side probed).
        strict: Use the original Fig.-1 gating (both inputs nonempty) instead
            of the relaxed TSM condition — for the X1 ablation.
        indexed: Window-state layout.  None (default) auto-selects: keyed
            symmetric non-strict joins store tuples in per-key hash buckets
            and probe only the matching bucket (O(bucket) per probe);
            everything else — non-equi predicates without a key, asymmetric
            joins, and the strict X1 ablation — keeps the O(window) scan
            layout, byte-identically to previous behaviour.  False forces
            the scan layout for a keyed join (differential testing /
            ablation); True demands the fast path and raises
            :class:`ExecutionError` when the join is not eligible.
            Indexed joins require hashable key values.
        adaptive: Per-probe layout choice for indexed joins.  At low key
            cardinality a bucket probe loses to the plain scan (the bucket
            *is* most of the window, and the hash lookup is pure overhead —
            BENCH_join.json measures 0.93x at cardinality 4), so an adaptive
            join consults the opposite window's live ``bucket_count`` before
            each probe and falls back to the scan walk while it sits below
            ``adaptive_threshold``.  Both paths yield candidates in
            insertion order, so outputs stay byte-identical either way.
            None (default) enables adaptivity exactly when the *layout* was
            auto-selected (``indexed=None``); an explicit ``indexed=True``
            pins pure bucket probing unless ``adaptive=True`` is also
            passed.  ``adaptive=True`` on a join that is not
            indexed-eligible raises :class:`ExecutionError`.
        adaptive_threshold: Live-bucket count at or above which the
            adaptive join probes buckets instead of scanning (default 8 —
            above the measured break-even of the benchmark's cardinality
            sweep).
    """

    is_iwp = True
    arity = 2

    def __init__(self, name: str, window: WindowSpec | None = None, *,
                 predicate: Callable[[Any, Any], bool] | None = None,
                 key: str | tuple[str, str] | None = None,
                 window_left: WindowSpec | None = None,
                 window_right: WindowSpec | None = None,
                 combiner: Callable[[Any, Any], Any] = merge_payloads,
                 strict: bool = False,
                 indexed: bool | None = None,
                 adaptive: bool | None = None,
                 adaptive_threshold: int = 8,
                 output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        if window is None and window_left is None and window_right is None:
            raise ExecutionError(
                f"join {name!r}: at least one side needs a window spec"
            )
        left_spec = window_left if window_left is not None else window
        right_spec = window_right if window_right is not None else window
        self.key = key
        self.key_fields: tuple[str, str] | None = None
        if key is not None:
            self.key_fields = (key, key) if isinstance(key, str) else tuple(key)
        #: The caller's raw predicate, applied per candidate on *both* paths
        #: (the scan path composes it with the key check; the indexed path
        #: replaces the key check with the bucket lookup).
        self.base_predicate = predicate
        eligible = (self.key_fields is not None and not strict
                    and left_spec is not None and right_spec is not None)
        if indexed is True and not eligible:
            raise ExecutionError(
                f"join {name!r}: indexed=True requires key columns, "
                "windows on both sides, and non-strict gating"
            )
        self.indexed = eligible if indexed is None else bool(indexed and eligible)
        if adaptive is True and not self.indexed:
            raise ExecutionError(
                f"join {name!r}: adaptive=True requires an indexed-eligible "
                "join (key columns, windows on both sides, non-strict gating)"
            )
        if adaptive_threshold < 0:
            raise ExecutionError(
                f"join {name!r}: adaptive_threshold must be >= 0, "
                f"got {adaptive_threshold}"
            )
        # Adaptivity defaults on only when the layout itself was
        # auto-selected; an explicit indexed=True is a pinned choice.
        self.adaptive = (self.indexed and indexed is None
                         if adaptive is None else bool(adaptive))
        self.adaptive_threshold = adaptive_threshold
        if self.indexed:
            left_key, right_key = self.key_fields
            self.windows: list[TimeWindow | CountWindow | IndexedTimeWindow
                               | IndexedCountWindow | _EmptyWindow] = [
                left_spec.build(key_fn=lambda p: p[left_key]),
                right_spec.build(key_fn=lambda p: p[right_key]),
            ]
        else:
            self.windows = [
                left_spec.build() if left_spec is not None else _EmptyWindow(),
                right_spec.build() if right_spec is not None else _EmptyWindow(),
            ]
        self.predicate = predicate
        if key is not None:
            left_key, right_key = self.key_fields
            base = predicate

            def key_predicate(lp: Any, rp: Any) -> bool:
                if lp[left_key] != rp[right_key]:
                    return False
                return base(lp, rp) if base is not None else True

            self.predicate = key_predicate
        self.combiner = combiner
        self.strict = strict
        self._last_emitted_ts = LATENT_TS
        self._gate_cache: tuple[list[float], float] | None = None
        self.matches_emitted = 0
        self.indexed_probes = 0
        self.scan_probes = 0
        self.punctuation_consumed = 0
        self.punctuation_forwarded = 0
        self.punctuation_suppressed = 0
        self.tuples_processed = 0

    def attach_input(self, buffer: StreamBuffer, producer) -> None:
        super().attach_input(buffer, producer)
        # Cached-τ invalidation: the TSM gate minimum changes only when an
        # input buffer's head or register moves, and both only move through
        # buffer mutations — so one hook per input replaces the repeated
        # min-over-peeks in more()/stalled_input_index()/_select_index().
        buffer.on_change = self._invalidate_gates

    def _invalidate_gates(self) -> None:
        self._gate_cache = None

    # ------------------------------------------------------------------ #
    # Gating (relaxed more condition of paper Fig. 5)

    def _gates_tau(self) -> tuple[list[float], float]:
        """The per-input TSM gates and their minimum τ, cached.

        The cache is invalidated by the input buffers' ``on_change`` hooks,
        so within one execution step (``more`` → ``_select_index`` →
        punctuation handling) the gates are computed once instead of three
        times, and an unchanged join re-polled by the engine costs one
        tuple-unpack.
        """
        cache = self._gate_cache
        if cache is None:
            gates = [buf.gate_ts() for buf in self.inputs]
            cache = self._gate_cache = (gates, min(gates))
        return cache

    def _gates(self) -> list[float]:
        return self._gates_tau()[0]

    def _latent_ready_index(self) -> int | None:
        for i, buf in enumerate(self.inputs):
            head = buf.peek()
            if head is not None and head.is_latent:
                return i
        return None

    def _latent_head_index(self) -> int | None:
        """Block-aware :meth:`_latent_ready_index` that never explodes a
        head block.  Peeking refreshes the TSM register as a side effect;
        the explicit update here mirrors that exactly (latent timestamps
        never move a register), keeping the gates byte-identical between
        the scalar and columnar paths."""
        for i, buf in enumerate(self.inputs):
            ts = buf.head_ts()
            if ts is None:
                continue
            buf.register.update(ts)
            if ts == LATENT_TS:
                return i
        return None

    def more(self) -> bool:
        if self._latent_ready_index() is not None:
            return True
        if self.strict:
            return all(buf for buf in self.inputs)
        gates, tau = self._gates_tau()
        if tau == LATENT_TS:
            return False
        return any(buf.head_ts() == tau for buf in self.inputs)

    def stalled_input_index(self) -> int:
        if self.strict:
            for i, buf in enumerate(self.inputs):
                if buf.is_empty:
                    return i
            return 0
        gates, tau = self._gates_tau()
        for i, buf in enumerate(self.inputs):
            if buf.is_empty and gates[i] == tau:
                return i
        return min(range(len(gates)), key=gates.__getitem__)

    @property
    def supports_blocks(self) -> bool:  # type: ignore[override]
        """Columnar eligibility: every gating mode except the strict X1
        ablation, whose both-inputs-nonempty gate is inherently per-element
        (each consumption can flip the gate, so there are no runs to
        vectorize).  Strict joins keep the scalar fallback path."""
        return not self.strict

    @property
    def window_size_total(self) -> int:
        """Total tuples currently stored across both window buffers."""
        return len(self.windows[0]) + len(self.windows[1])

    @property
    def probe_mode(self) -> str:
        """The configured probing strategy: scan, indexed, or adaptive."""
        if not self.indexed:
            return "scan"
        return "adaptive" if self.adaptive else "indexed"

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of both windows, the watermark, and counters.

        An :class:`_EmptyWindow` side snapshots as None — it carries no
        state, and the restored join rebuilds the same stub from its spec.
        """
        return {
            "version": 1,
            "windows": [
                None if isinstance(win, _EmptyWindow) else win.snapshot_state()
                for win in self.windows
            ],
            "last_emitted_ts": self._last_emitted_ts,
            "matches_emitted": self.matches_emitted,
            "indexed_probes": self.indexed_probes,
            "scan_probes": self.scan_probes,
            "punctuation_consumed": self.punctuation_consumed,
            "punctuation_forwarded": self.punctuation_forwarded,
            "punctuation_suppressed": self.punctuation_suppressed,
            "tuples_processed": self.tuples_processed,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(f"unsupported WindowJoin state: {state!r}")
        for win, win_state in zip(self.windows, state["windows"]):
            if win_state is None:
                if not isinstance(win, _EmptyWindow):
                    raise ExecutionError(
                        f"join {self.name!r}: snapshot has no state for a "
                        "stored window side (layout mismatch)")
            else:
                win.restore_state(win_state)
        self._last_emitted_ts = state["last_emitted_ts"]
        self._gate_cache = None
        self.matches_emitted = state["matches_emitted"]
        # Probe-path counters postdate version 1; old snapshots lack them.
        self.indexed_probes = state.get("indexed_probes", 0)
        self.scan_probes = state.get("scan_probes", 0)
        self.punctuation_consumed = state["punctuation_consumed"]
        self.punctuation_forwarded = state["punctuation_forwarded"]
        self.punctuation_suppressed = state["punctuation_suppressed"]
        self.tuples_processed = state["tuples_processed"]

    # ------------------------------------------------------------------ #
    # Execution (paper Fig. 6)

    def _select_index(self) -> int:
        latent_idx = self._latent_ready_index()
        if latent_idx is not None:
            return latent_idx
        if self.strict:
            heads = [(buf.head_ts(), i) for i, buf in enumerate(self.inputs)]
            return min(heads)[1]
        gates, tau = self._gates_tau()
        punct_idx: int | None = None
        for i, buf in enumerate(self.inputs):
            head = buf.peek()
            if head is None or head.ts != tau:
                continue
            if head.is_punctuation:
                punct_idx = punct_idx if punct_idx is not None else i
            else:
                return i
        if punct_idx is None:
            raise ExecutionError(
                f"join {self.name!r}: execute_step called without more()"
            )
        return punct_idx

    def execute_step(self, ctx: OpContext) -> StepResult:
        idx = self._select_index()
        element = self.inputs[idx].pop()

        if element.is_punctuation:
            return self._handle_punctuation(element)

        assert isinstance(element, DataTuple)
        if element.is_latent:
            element = element.stamped(ctx.clock.now())
        return self._handle_data(idx, element)

    def _handle_data(self, idx: int, tup: DataTuple, *,
                     staged: list[StreamElement] | None = None,
                     tau_override: Any = _NO_TAU,
                     maintain: bool = True) -> StepResult:
        """Probe one data tuple against the opposite window.

        The columnar path reuses the scalar logic verbatim through three
        hooks: ``staged`` collects emissions instead of pushing them one by
        one (flushed as blocks afterwards), ``tau_override`` supplies the
        analytically-derived gate minimum for a mid-run tuple whose buffer
        state has already been bulk-drained, and ``maintain=False`` defers
        own-window expiry/insertion to a single :meth:`insert_run` after
        the run.  With the defaults the behaviour is exactly the original
        scalar step.
        """
        other = 1 - idx
        own_window = self.windows[idx]
        other_window = self.windows[other]
        out_emit = self.emit if staged is None else staged.append
        # Expire against the probing tuple's timestamp (Kang et al. order:
        # probe happens against the still-valid window contents).
        other_window.expire(tup.ts)
        if self.indexed and (
                not self.adaptive
                or other_window.bucket_count >= self.adaptive_threshold):
            # Equality fast path: the opposite window is key-partitioned, so
            # only the matching bucket is examined.  Bucket membership *is*
            # the key equality check, leaving just the caller's residual
            # predicate per candidate.
            candidates = other_window.probe(tup.payload[self.key_fields[idx]])
            predicate = self.base_predicate
            self.indexed_probes += 1
        else:
            # Scan walk — either the scan layout, or an adaptive indexed
            # join whose opposite window holds too few live buckets for the
            # hash lookup to pay for itself.  Indexed windows expose the
            # same matches() contract (every live tuple, timestamp order),
            # and self.predicate carries the key-equality check, so both
            # paths emit identical results.
            candidates = other_window.matches(tup.ts)
            predicate = self.predicate
            self.scan_probes += 1
        probes = 0
        emitted = 0
        for candidate in candidates:
            probes += 1
            left_payload, right_payload = (
                (tup.payload, candidate.payload) if idx == 0
                else (candidate.payload, tup.payload)
            )
            if predicate is not None and not predicate(left_payload,
                                                       right_payload):
                continue
            out = DataTuple(ts=tup.ts,
                            payload=self.combiner(left_payload, right_payload),
                            kind=tup.kind,
                            arrival_ts=latest_arrival(tup, candidate))
            out_emit(out)
            emitted += 1
        if maintain:
            own_window.expire(tup.ts)
            own_window.insert(tup)
        self.tuples_processed += 1
        self.matches_emitted += emitted
        if tup.ts > self._last_emitted_ts and emitted:
            self._last_emitted_ts = tup.ts
        emitted_punct = 0
        if not emitted and not self.strict:
            # "When we cannot generate a data tuple, we simply produce a
            # punctuation tuple for the benefit of the IWP operators down the
            # path" (paper Section 4.2).
            tau = (self._gates_tau()[1] if tau_override is _NO_TAU
                   else tau_override)
            if tau > self._last_emitted_ts:
                out_emit(Punctuation(ts=tau, origin=self.name))
                self._last_emitted_ts = tau
                self.punctuation_forwarded += 1
                emitted_punct = 1
        return StepResult(consumed=tup, probes=probes, probes_emitted=emitted,
                          emitted_data=emitted,
                          emitted_punctuation=emitted_punct)

    def execute_batch(self, ctx: OpContext, limit: int) -> BatchResult:
        """Micro-batched join: drain one side's run while it probes alone.

        While one input's head run stays strictly below the other input's
        gate timestamp, the scalar path would select that input on every
        iteration; the run is processed in a tight loop without re-deriving
        the full gating each time.  Probing work itself is inherently
        per-tuple and is charged as such through :attr:`BatchResult.probes`.
        """
        if self.strict:
            return super().execute_batch(ctx, limit)
        batch = BatchResult()
        inputs = self.inputs
        while batch.steps < limit:
            latent_idx = self._latent_ready_index()
            if latent_idx is not None:
                element = inputs[latent_idx].pop()
                assert isinstance(element, DataTuple)
                element = element.stamped(ctx.clock.now())
                batch.add_step(self._handle_data(latent_idx, element))
                continue
            gates, tau = self._gates_tau()
            if tau == LATENT_TS:
                break
            data_idx: int | None = None
            punct_idx: int | None = None
            for i, buf in enumerate(inputs):
                head = buf.peek()
                if head is None or head.ts != tau:
                    continue
                if head.is_punctuation:
                    if punct_idx is None:
                        punct_idx = i
                else:
                    data_idx = i
                    break
            if data_idx is not None:
                buf = inputs[data_idx]
                other_gate = gates[1 - data_idx]
                while batch.steps < limit:
                    element = buf.pop()
                    assert isinstance(element, DataTuple)
                    if element.is_latent:
                        element = element.stamped(ctx.clock.now())
                    batch.add_step(self._handle_data(data_idx, element))
                    head = buf.peek()
                    if head is None or head.is_punctuation:
                        break
                    ts = head.ts
                    if ts != LATENT_TS and ts >= other_gate:
                        break
                continue
            if punct_idx is not None:
                element = inputs[punct_idx].pop()
                batch.add_step(self._handle_punctuation(element))
                break  # punctuation is a batch boundary
            break  # no head at tau: more() is false
        return batch

    def execute_block(self, ctx: OpContext, limit: int) -> BatchResult:
        """Columnar join: bulk-drain one side's run and probe it row by row.

        The scalar batch path already identifies one-sided *runs* — maximal
        stretches where a single input keeps winning the τ selection because
        its head stays strictly below the other input's gate.  Here the run
        is materialized in one :meth:`StreamBuffer.drain_block` (zero-copy
        when the producer pushed blocks), probed tuple-at-a-time (probing is
        inherently per-row), and its window maintenance and emissions are
        amortized: one :meth:`insert_run` into the own window per run, and
        one :meth:`StreamBuffer.push_block` per emitted run.

        The per-row no-match punctuation gate is derived *analytically* for
        mid-run rows: while a run from input ``i`` is being consumed, the
        other gate cannot move (that buffer is untouched), and input ``i``'s
        own gate after row ``k`` is row ``k+1``'s timestamp when stamped, or
        the running register maximum when latent — exactly what
        ``_gates_tau()`` would have computed against the un-drained buffer.
        The final row of a run uses the live gates (the buffer state is
        already exact), so τ stays byte-identical to the scalar path.
        """
        if self.strict:  # pragma: no cover - supports_blocks gates this
            return super().execute_batch(ctx, limit)
        batch = BatchResult()
        inputs = self.inputs
        staged: list[StreamElement] = []
        while batch.steps < limit:
            latent_idx = self._latent_head_index()
            if latent_idx is not None:
                element = inputs[latent_idx].pop()
                assert isinstance(element, DataTuple)
                element = element.stamped(ctx.clock.now())
                batch.add_step(
                    self._handle_data(latent_idx, element, staged=staged))
                continue
            gates, tau = self._gates_tau()
            if tau == LATENT_TS:
                break
            data_idx: int | None = None
            punct_idx: int | None = None
            for i, buf in enumerate(inputs):
                if buf.head_ts() != tau:
                    continue
                if buf.head_is_punctuation():
                    if punct_idx is None:
                        punct_idx = i
                else:
                    data_idx = i
                    break
            if data_idx is not None:
                buf = inputs[data_idx]
                other_gate = gates[1 - data_idx]
                block = buf.drain_block(limit - batch.steps,
                                        max_ts=other_gate)
                if block is None:
                    # Head ties the other gate: the scalar run would consume
                    # exactly this one element before its boundary check.
                    element = buf.pop()
                    assert isinstance(element, DataTuple)
                    if element.is_latent:
                        element = element.stamped(ctx.clock.now())
                    batch.add_step(
                        self._handle_data(data_idx, element, staged=staged))
                    continue
                rows = block.to_tuples()
                n = len(rows)
                own_window = self.windows[data_idx]
                # Running register maximum for the analytic own-gate: the
                # drained buffer's register value before the drain, folded
                # with the stamped timestamps consumed so far (a scalar pop
                # sequence updates the register with exactly these values;
                # latent originals never enter it).
                running_reg = buf.register.value
                # The probe loop is inlined (rather than calling
                # :meth:`_handle_data` per row) so a run costs no per-row
                # StepResult/add_step dispatch; every branch below mirrors
                # that method line for line.
                other_window = self.windows[1 - data_idx]
                left_side = data_idx == 0
                use_index = self.indexed
                adaptive = self.adaptive
                bucket_floor = self.adaptive_threshold
                key_field = (self.key_fields[data_idx]
                             if self.key_fields is not None else None)
                base_predicate = self.base_predicate
                full_predicate = self.predicate
                combiner = self.combiner
                stage = staged.append
                run_probes = 0
                run_emitted = 0
                run_punct = 0
                # Matches go straight into column arrays — one block per
                # maximal ordered stretch — instead of through a per-match
                # DataTuple that _flush_staged would only decompose again.
                # Sequence numbers come from the same global counter the
                # DataTuple default would draw on, in the same order, so a
                # downstream materialization rebuilds identical tuples.
                col_ts: list[float] = []
                col_seq: list[int] = []
                col_kind: list = []
                col_arrival: list[float] = []
                col_payloads: list = []
                cts_append = col_ts.append
                cseq_append = col_seq.append
                ckind_append = col_kind.append
                carr_append = col_arrival.append
                cpay_append = col_payloads.append
                seq_counter = _tuples._SEQ
                for k, tup in enumerate(rows):
                    ts = tup.ts
                    if ts == LATENT_TS:
                        tup = rows[k] = tup.stamped(ctx.clock.now())
                        ts = tup.ts
                    elif ts > running_reg:
                        running_reg = ts
                    payload = tup.payload
                    other_window.expire(ts)
                    if use_index and (
                            not adaptive
                            or other_window.bucket_count >= bucket_floor):
                        candidates = other_window.probe(payload[key_field])
                        predicate = base_predicate
                        self.indexed_probes += 1
                    else:
                        candidates = other_window.matches(ts)
                        predicate = full_predicate
                        self.scan_probes += 1
                    emitted = 0
                    tup_kind = tup.kind
                    tup_arr = tup.arrival_ts
                    tup_arr_nan = tup_arr != tup_arr
                    for candidate in candidates:
                        run_probes += 1
                        left_payload, right_payload = (
                            (payload, candidate.payload) if left_side
                            else (candidate.payload, payload)
                        )
                        if predicate is not None and not predicate(
                                left_payload, right_payload):
                            continue
                        if col_ts and ts < col_ts[-1]:
                            # Order boundary (a stamped latent row can sit
                            # below an external timestamp): close the block.
                            staged.append(ColumnarBlock(
                                col_ts, col_seq, col_kind, col_arrival,
                                col_payloads))
                            col_ts, col_seq, col_kind = [], [], []
                            col_arrival, col_payloads = [], []
                            cts_append = col_ts.append
                            cseq_append = col_seq.append
                            ckind_append = col_kind.append
                            carr_append = col_arrival.append
                            cpay_append = col_payloads.append
                        cts_append(ts)
                        cseq_append(next(seq_counter))
                        ckind_append(tup_kind)
                        cand_arr = candidate.arrival_ts
                        if tup_arr_nan:
                            carr_append(cand_arr)
                        elif cand_arr != cand_arr or tup_arr >= cand_arr:
                            carr_append(tup_arr)
                        else:
                            carr_append(cand_arr)
                        cpay_append(combiner(left_payload, right_payload))
                        emitted += 1
                    self.tuples_processed += 1
                    if emitted:
                        self.matches_emitted += emitted
                        run_emitted += emitted
                        if ts > self._last_emitted_ts:
                            self._last_emitted_ts = ts
                    else:
                        if k + 1 < n:
                            nxt = rows[k + 1].ts
                            own_gate = (nxt if nxt != LATENT_TS
                                        else running_reg)
                            tau = (own_gate if own_gate < other_gate
                                   else other_gate)
                        else:
                            # Last row of the run: the buffer now holds
                            # exactly the post-run state, so the live
                            # gates apply.
                            tau = self._gates_tau()[1]
                        if tau > self._last_emitted_ts:
                            if col_ts:
                                # Emission order: matches staged so far go
                                # out ahead of this punctuation.
                                staged.append(ColumnarBlock(
                                    col_ts, col_seq, col_kind, col_arrival,
                                    col_payloads))
                                col_ts, col_seq, col_kind = [], [], []
                                col_arrival, col_payloads = [], []
                                cts_append = col_ts.append
                                cseq_append = col_seq.append
                                ckind_append = col_kind.append
                                carr_append = col_arrival.append
                                cpay_append = col_payloads.append
                            stage(Punctuation(ts=tau, origin=self.name))
                            self._last_emitted_ts = tau
                            self.punctuation_forwarded += 1
                            run_punct += 1
                if col_ts:
                    staged.append(ColumnarBlock(
                        col_ts, col_seq, col_kind, col_arrival,
                        col_payloads))
                batch.steps += n
                batch.consumed_data += n
                batch.probes += run_probes
                batch.probes_emitted += run_emitted
                batch.emitted_data += run_emitted
                batch.emitted_punctuation += run_punct
                own_window.insert_run(rows)
                continue
            if punct_idx is not None:
                # Punctuation handling emits directly; staged data must be
                # pushed first to preserve emission order.
                self._flush_staged(staged)
                element = inputs[punct_idx].pop()
                batch.add_step(self._handle_punctuation(element))
                break  # punctuation is a batch boundary
            break  # no head at tau: more() is false
        self._flush_staged(staged)
        return batch

    def _flush_staged(
            self, staged: list[StreamElement | ColumnarBlock]) -> None:
        """Push staged emissions, packing maximal ordered data runs as
        columnar blocks.  Pre-built blocks (the block path stages match
        columns directly) are forwarded as-is; punctuation (and any
        out-of-order boundary, which the buffer's order check must see
        exactly as the scalar push sequence would) flushes as scalar
        elements."""
        if not staged:
            return
        outputs = self.outputs
        i, n = 0, len(staged)
        while i < n:
            element = staged[i]
            if isinstance(element, ColumnarBlock):
                for out in outputs:
                    out.push_block(element)
                i += 1
            elif isinstance(element, DataTuple):
                j = i + 1
                while (j < n and isinstance(staged[j], DataTuple)
                       and staged[j].ts >= staged[j - 1].ts):
                    j += 1
                if j - i > 1:
                    block = ColumnarBlock.from_tuples(staged[i:j])
                    for out in outputs:
                        out.push_block(block)
                else:
                    for out in outputs:
                        out.push(element)
                i = j
            else:
                for out in outputs:
                    out.push(element)
                i += 1
        staged.clear()

    def _handle_punctuation(self, punct) -> StepResult:
        self.punctuation_consumed += 1
        # Punctuation advances time on its input: shrink both windows to the
        # new safe horizon (memory benefit of ETS).
        tau = punct.ts if self.strict else self._gates_tau()[1]
        for window in self.windows:
            window.expire(tau)
        if tau > self._last_emitted_ts:
            self.emit(Punctuation(ts=tau, origin=self.name,
                                  periodic=getattr(punct, "periodic", False)))
            self._last_emitted_ts = tau
            self.punctuation_forwarded += 1
            return StepResult(consumed=punct, emitted_punctuation=1)
        self.punctuation_suppressed += 1
        return StepResult(consumed=punct)


def latest_arrival(a: DataTuple, b: DataTuple) -> float:
    """Arrival stamp for a join result: the later of the two inputs'.

    A join result becomes derivable only once its *second* contributing
    tuple has entered the DSMS, so output latency — the idle-waiting delay
    the paper measures — is counted from the later arrival.  NaN stamps
    (never set) lose to real stamps.
    """
    fa, fb = a.arrival_ts, b.arrival_ts
    if fa != fa:  # NaN
        return fb
    if fb != fb:
        return fa
    return fa if fa >= fb else fb
