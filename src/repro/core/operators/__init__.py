"""Query operators: sources, sinks, stateless transforms, and IWP operators."""

from .aggregate import (
    AggSpec,
    Aggregator,
    Avg,
    Count,
    Max,
    Min,
    SlidingAggregate,
    Sum,
    TumblingAggregate,
)
from .base import BatchResult, Clock, OpContext, Operator, StepResult
from .join import WindowJoin, merge_payloads
from .map import FlatMap, Map
from .project import Project
from .reorder import Reorder
from .select import Select
from .shed import Shed
from .sink import SinkNode
from .source import SourceNode
from .stateless import StatelessOperator
from .union import Union

__all__ = [
    "AggSpec",
    "Aggregator",
    "Avg",
    "BatchResult",
    "Clock",
    "Count",
    "FlatMap",
    "Map",
    "Max",
    "Min",
    "OpContext",
    "Operator",
    "Project",
    "Reorder",
    "Select",
    "Shed",
    "SinkNode",
    "SlidingAggregate",
    "SourceNode",
    "StatelessOperator",
    "StepResult",
    "Sum",
    "TumblingAggregate",
    "Union",
    "WindowJoin",
    "merge_payloads",
]
