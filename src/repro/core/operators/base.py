"""Operator base classes and the execution-step contract.

An operator is a node of the query graph.  Arcs are :class:`StreamBuffer`
instances; the operator at the tail *produces* into the buffer and the
operator at the head *consumes* from it.  The execution engine drives
operators through a narrow contract:

* :meth:`Operator.more` — the paper's ``more`` condition: does the operator
  have input it is allowed to process right now?  IWP operators implement the
  relaxed TSM-register condition of paper Fig. 5.
* :meth:`Operator.has_yield` — the paper's ``yield`` condition: is there
  anything in the operator's output buffers for a successor to consume?
* :meth:`Operator.execute_step` — perform one production/consumption step
  (paper Figs. 1 and 6) and report what was done so the engine can charge
  simulated CPU cost.
* :meth:`Operator.stalled_input_index` — when ``more`` is false, which input
  gates progress; the engine backtracks to that input's producer (the
  modified Backtrack rule of Section 3.2).

Operators never touch the clock or the cost model directly; everything they
need arrives through the :class:`OpContext` the engine passes in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from ..buffers import StreamBuffer
from ..errors import GraphError
from ..tuples import Punctuation, StreamElement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..schema import Schema

__all__ = ["BatchResult", "Clock", "OpContext", "StepResult", "Operator"]


class Clock(Protocol):
    """Anything with a ``now()`` returning the current stream time."""

    def now(self) -> float: ...


@dataclass(slots=True)
class OpContext:
    """Per-step context handed to operators by the engine.

    Attributes:
        clock: Source of "now" for latent stamping and window bookkeeping.
    """

    clock: Clock


@dataclass(slots=True)
class StepResult:
    """What one execution step did; the engine turns this into CPU cost.

    Attributes:
        consumed: The element removed from an input buffer, or None when the
            step was a pure production (e.g. an aggregate flushing a window).
        probes: Number of window tuples *examined* (join probe cost) —
            bucket-sized under an indexed equality join, window-sized under
            a scan join.
        probes_emitted: The subset of examined candidates that passed the
            join condition and produced an output tuple.  The
            examined-vs-emitted gap is the work the hash index removes.
        emitted_data: Data tuples appended to output buffers.
        emitted_punctuation: Punctuation tuples appended to output buffers.
    """

    consumed: StreamElement | None = None
    probes: int = 0
    probes_emitted: int = 0
    emitted_data: int = 0
    emitted_punctuation: int = 0

    @property
    def consumed_punctuation(self) -> bool:
        return self.consumed is not None and self.consumed.is_punctuation


@dataclass(slots=True)
class BatchResult:
    """What one micro-batched execution step (a run of elements) did.

    The per-tuple accounting mirrors :class:`StepResult` so the cost model
    can keep charging CPU per tuple — batching amortizes dispatch overhead,
    it does not make tuples cheaper in simulated time.

    Attributes:
        steps: Scalar-equivalent execution steps this batch replaces.
        consumed_data / consumed_punctuation: Elements removed from input
            buffers, by kind.
        probes: Window tuples examined across the whole run.
        probes_emitted: Examined candidates that produced an output tuple
            (see :attr:`StepResult.probes_emitted`).
        emitted_data / emitted_punctuation: Elements appended to output
            buffers (counted once per logical emission, as in StepResult).
    """

    steps: int = 0
    consumed_data: int = 0
    consumed_punctuation: int = 0
    probes: int = 0
    probes_emitted: int = 0
    emitted_data: int = 0
    emitted_punctuation: int = 0

    def add_step(self, result: StepResult) -> None:
        """Fold one scalar step's result into this batch."""
        self.steps += 1
        if result.consumed_punctuation:
            self.consumed_punctuation += 1
        else:
            self.consumed_data += 1
        self.probes += result.probes
        self.probes_emitted += result.probes_emitted
        self.emitted_data += result.emitted_data
        self.emitted_punctuation += result.emitted_punctuation


@dataclass(slots=True)
class _Ports:
    inputs: list[StreamBuffer] = field(default_factory=list)
    outputs: list[StreamBuffer] = field(default_factory=list)


class Operator:
    """Base class for all query-graph nodes.

    Sub-classes set :attr:`is_iwp` when they are Idle-Waiting Prone (union,
    join) and :attr:`arity` when they require a fixed number of inputs.

    Attributes:
        name: Unique name within the owning query graph.
        cost_class: Key into the simulation cost model; defaults to the
            lower-cased class name so each operator type can be priced
            individually.
    """

    #: True for operators that can idle-wait on timestamp skew (union, join).
    is_iwp: bool = False
    #: Required number of inputs; None means "one or more".
    arity: int | None = 1
    #: True for operators implementing :meth:`execute_block` — the columnar
    #: path.  Operators (or configurations) without one leave this False
    #: and the block-mode engine falls back to :meth:`execute_batch`, with
    #: incoming blocks exploded lazily by the buffer, so their
    #: byte-identity is preserved by construction.  Stateful operators gate
    #: it per instance: a strict (X1-ablation) join and a ``late="error"``
    #: reorder stay scalar.
    supports_blocks: bool = False

    def __init__(self, name: str, *, output_schema: "Schema | None" = None) -> None:
        self.name = name
        self.output_schema = output_schema
        self._ports = _Ports()
        self.cost_class = type(self).__name__.lower()
        #: Producer operator per input index; wired by the query graph.
        self.predecessors: list["Operator | None"] = []
        #: Consumer operator per output index; wired by the query graph.
        self.successors: list["Operator | None"] = []
        #: Precomputed (output buffer, consumer) arcs with a live consumer.
        #: The engine's Forward rule walks this instead of re-zipping and
        #: re-filtering ``outputs``/``successors`` on every NOS decision.
        self.forward_pairs: tuple[tuple[StreamBuffer, "Operator"], ...] = ()

    # ------------------------------------------------------------------ #
    # Wiring (used by QueryGraph)

    @property
    def inputs(self) -> list[StreamBuffer]:
        return self._ports.inputs

    @property
    def outputs(self) -> list[StreamBuffer]:
        return self._ports.outputs

    def attach_input(self, buffer: StreamBuffer, producer: "Operator | None") -> None:
        if self.arity is not None and len(self._ports.inputs) >= self.arity:
            raise GraphError(
                f"operator {self.name!r} accepts {self.arity} input(s); "
                "attempted to attach more"
            )
        self._ports.inputs.append(buffer)
        self.predecessors.append(producer)

    def attach_output(self, buffer: StreamBuffer, consumer: "Operator | None") -> None:
        self._ports.outputs.append(buffer)
        self.successors.append(consumer)
        self.rebuild_forward_pairs()

    def rebuild_forward_pairs(self) -> None:
        """Refresh the precomputed Forward-rule lookup table.

        Called after every :meth:`attach_output` (and again by the query
        graph's ``validate``), so the table is correct for hand-wired
        operators in tests as well as graph-built ones.
        """
        self.forward_pairs = tuple(
            (buf, succ)
            for buf, succ in zip(self._ports.outputs, self.successors)
            if succ is not None
        )

    def validate_wiring(self) -> None:
        """Raise :class:`GraphError` unless the operator is fully wired."""
        if self.arity is not None and len(self._ports.inputs) != self.arity:
            raise GraphError(
                f"operator {self.name!r} needs {self.arity} input(s), "
                f"has {len(self._ports.inputs)}"
            )
        if self.arity is None and not self._ports.inputs:
            raise GraphError(f"operator {self.name!r} needs at least one input")

    # ------------------------------------------------------------------ #
    # NOS conditions

    def more(self) -> bool:
        """The ``more`` condition: is there processable input right now?

        The default suits single-input operators: any buffered element is
        processable.  IWP operators override this with the relaxed
        TSM-register condition.
        """
        return any(buf for buf in self._ports.inputs)

    def has_yield(self) -> bool:
        """The ``yield`` condition: do the output buffers hold anything?"""
        return any(buf for buf in self._ports.outputs)

    def stalled_input_index(self) -> int:
        """Index of the input that gates progress when ``more`` is false.

        Single-input operators stall only on their sole input.
        """
        return 0

    def has_pending_input(self) -> bool:
        """True when any input buffer is nonempty (used for idle accounting)."""
        return any(buf for buf in self._ports.inputs)

    def has_pending_data(self) -> bool:
        """True when any input buffer holds a *data* tuple.

        Idle-waiting is measured (and on-demand ETS is justified) in terms of
        data tuples stuck behind the timestamp gate; punctuation sitting in a
        buffer is bookkeeping, not user-visible delay.
        """
        return any(buf.data_count for buf in self._ports.inputs)

    # ------------------------------------------------------------------ #
    # Execution

    def execute_step(self, ctx: OpContext) -> StepResult:
        """Perform one production/consumption step.

        Only called when :meth:`more` is true.  Must consume at most one
        input element and may emit any number of output elements.
        """
        raise NotImplementedError

    def execute_batch(self, ctx: OpContext, limit: int) -> BatchResult:
        """Process up to ``limit`` input elements in one engine step.

        The engine's micro-batched mode (``batch_size > 1``) calls this in
        place of repeated :meth:`execute_step` dispatches.  Implementations
        must be observationally identical to the scalar path: same elements
        consumed in the same order, same emissions in the same order, only
        the per-element dispatch amortized.

        This default loops over :meth:`execute_step`, so every operator
        keeps working without a specialized implementation.  The loop stops
        at the batch boundary rules shared by all implementations: after
        ``limit`` steps, when ``more`` turns false, or right after consuming
        a punctuation tuple (batches never cross punctuation — ETS
        information must reach the engine's NOS rules promptly).
        """
        batch = BatchResult()
        while batch.steps < limit and self.more():
            result = self.execute_step(ctx)
            batch.add_step(result)
            if result.consumed_punctuation:
                break
        return batch

    def execute_block(self, ctx: OpContext, limit: int) -> BatchResult:
        """Process up to ``limit`` input rows through the columnar path.

        Only called by the block-mode engine, and only when
        :attr:`supports_blocks` is True.  Implementations share the batch
        boundary rules (limit, ``more`` turning false, punctuation) and must
        be observationally identical to the scalar path; the difference is
        that input arrives as :class:`~repro.core.columnar.ColumnarBlock`
        runs drained whole from the buffer, and data output should be pushed
        as blocks so downstream columnar operators keep the amortization.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the columnar path")

    # ------------------------------------------------------------------ #
    # Emission helpers

    def emit(self, element: StreamElement) -> None:
        """Append ``element`` to every output buffer (replicating fan-out)."""
        for buf in self._ports.outputs:
            buf.push(element)

    def emit_punctuation(self, punctuation: Punctuation) -> None:
        """Propagate a punctuation downstream, re-attributed to this operator."""
        self.emit(punctuation.reformatted(origin=self.name))

    # ------------------------------------------------------------------ #
    # Upstream feedback (see repro.feedback)

    def on_feedback(self, feedback, now: float):
        """Receive an upstream :class:`~repro.core.tuples.FeedbackPunctuation`.

        Called by the feedback propagator in reverse topological order; the
        ``feedback`` argument is already the max-pressure combine over every
        live successor's assertion.  The return value is what this operator
        forwards to *its* predecessors: the default is pass-through (the
        operator is transparent to feedback, like non-IWP operators are to
        ordinary punctuation).  Reactive operators override this to adjust
        their knobs and may return a modified assertion (e.g. a shedder
        consuming part of the drop budget) or ``None`` to absorb the wave.
        """
        return feedback

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
