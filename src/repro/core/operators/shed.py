"""Load shedding: drop tuples under overload, keep timestamp knowledge.

The paper's related work minimizes memory through operator scheduling
(Babcock et al.'s Chain, reference [5]); the complementary DSMS tool is
*load shedding* — deliberately dropping tuples when the system cannot keep
up.  This operator sheds by probability or by queue pressure, and — the
part that matters in this codebase — it stays punctuation-transparent and
converts shedding into timestamp knowledge: a shed tuple's timestamp is not
lost, because the operator's pass-through of later elements (or an ETS from
upstream) still advances downstream TSM registers.

Two policies:

* ``probability``: classic random shedding at a fixed rate;
* ``queue_threshold``: shed only while this operator's input buffer holds
  more than a threshold of elements — pressure-driven shedding that is
  inactive in a healthy system.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any

from ..columnar import ColumnarBlock
from ..errors import ExecutionError
from ..tuples import DataTuple
from .base import BatchResult, OpContext, Operator
from .stateless import StatelessOperator

__all__ = ["Shed"]


class Shed(StatelessOperator):
    """Probabilistic / pressure-driven load shedder.

    Args:
        probability: Chance of dropping each data tuple when shedding is
            active (0 disables random shedding).
        queue_threshold: When set, shedding only applies while the input
            buffer length exceeds this threshold; when None, shedding is
            always active.
        seed: RNG seed — shedding must be reproducible like everything else.

    Attributes:
        shed_count: Data tuples dropped so far.
    """

    def __init__(self, name: str, probability: float, *,
                 queue_threshold: int | None = None,
                 seed: int = 0, output_schema=None) -> None:
        super().__init__(name, output_schema=output_schema)
        if not 0.0 <= probability <= 1.0:
            raise ExecutionError(
                f"shed {name!r}: probability must be in [0, 1], "
                f"got {probability}"
            )
        if queue_threshold is not None and queue_threshold < 0:
            raise ExecutionError(
                f"shed {name!r}: queue_threshold must be >= 0"
            )
        self.probability = probability
        self.queue_threshold = queue_threshold
        self._rng = random.Random(seed)
        self.shed_count = 0
        self.passed_count = 0
        #: Drop probability granted by upstream-flowing feedback (see
        #: :mod:`repro.feedback`); the effective drop rate is the max of
        #: the configured probability and this budget.  Stays 0.0 — and the
        #: operator stays byte-identical to its pre-feedback behavior —
        #: until a feedback wave actually carries a budget.
        self.drop_budget = 0.0

    def snapshot_state(self) -> dict:
        """Versioned snapshot of RNG position and shed counters.

        The RNG state travels so a recovered run draws the *same* random
        sequence the uninterrupted run would have — shedding decisions are
        part of the deterministic replay contract.
        """
        return {
            "version": 1,
            "rng_state": self._rng.getstate(),
            "shed_count": self.shed_count,
            "passed_count": self.passed_count,
            "drop_budget": self.drop_budget,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ExecutionError(f"unsupported Shed state: {state!r}")
        self._rng.setstate(state["rng_state"])
        self.shed_count = state["shed_count"]
        self.passed_count = state["passed_count"]
        self.drop_budget = state.get("drop_budget", 0.0)

    def _under_pressure(self) -> bool:
        if self.queue_threshold is None:
            return True
        return len(self.inputs[0]) > self.queue_threshold

    def execute_batch(self, ctx: OpContext, limit: int) -> BatchResult:
        # Pressure-driven shedding reads the live input-buffer length per
        # tuple; draining a whole run first would empty the buffer before the
        # decisions are made and diverge from the scalar path.  Use the
        # element-at-a-time fallback in that mode.
        if self.queue_threshold is not None:
            return Operator.execute_batch(self, ctx, limit)
        return super().execute_batch(ctx, limit)

    def execute_block(self, ctx: OpContext, limit: int) -> BatchResult:
        # Same reasoning as execute_batch: pressure-driven mode must read
        # the live buffer length per tuple, so it cannot drain runs.
        if self.queue_threshold is not None:
            return Operator.execute_batch(self, ctx, limit)
        return super().execute_block(ctx, limit)

    @property
    def effective_probability(self) -> float:
        """Drop rate in force: configured probability or feedback budget."""
        if self.drop_budget > self.probability:
            return self.drop_budget
        return self.probability

    def apply(self, tup: DataTuple, ctx: OpContext) -> list[Any]:
        probability = self.effective_probability
        if (probability > 0.0 and self._under_pressure()
                and self._rng.random() < probability):
            self.shed_count += 1
            return []
        self.passed_count += 1
        return [tup]

    def apply_block(self, block: ColumnarBlock,
                    ctx: OpContext) -> ColumnarBlock | None:
        """Columnar shed: draw per row in row order, narrow the selection.

        The RNG draw sequence is exactly the scalar one — no draw at all
        while the effective probability is zero (so an inactive shedder
        consumes no randomness), one draw per data tuple otherwise — which
        keeps crash-recovery RNG snapshots and byte-identity intact.
        """
        probability = self.effective_probability
        if probability <= 0.0:
            self.passed_count += block.count
            return block
        rng_random = self._rng.random
        kept: list[int] = []
        for i in block.indices():
            if rng_random() < probability:
                self.shed_count += 1
            else:
                self.passed_count += 1
                kept.append(i)
        if not kept:
            return None
        return block.with_selection(kept)

    def on_feedback(self, feedback, now: float):
        """Adopt the wave's drop budget; absorb it from further upstream.

        A pressure wave sets the budget directly; a relief wave halves it
        (and snaps to zero below 1%), so shedding unwinds over a few relief
        beats instead of cliff-dropping.  The forwarded assertion carries
        ``drop_budget=0``: this operator consumed the budget, and upstream
        shedders double-dropping the same tuples would overshoot.
        """
        if feedback.is_relief:
            self.drop_budget = 0.0 if self.drop_budget < 0.01 \
                else self.drop_budget * 0.5
        else:
            self.drop_budget = min(1.0, max(0.0, feedback.drop_budget))
        return replace(feedback, drop_budget=0.0)

    @property
    def shed_fraction(self) -> float:
        """Fraction of data tuples dropped so far (nan before any input)."""
        total = self.shed_count + self.passed_count
        if not total:
            return float("nan")
        return self.shed_count / total
