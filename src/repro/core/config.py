"""One canonical spelling for every engine-construction knob.

Four constructors accept overlapping execution knobs — ``ExecutionEngine``,
``Simulation``, ``ShardedEngine``, ``ShardedSimulation`` — and before this
module each spelled them slightly differently (``feedback`` vs
``feedback_factory``, ``observers`` lists vs None, per-ctor defaults).
:class:`EngineConfig` is the single source of truth: build one, hand it to
any of the four via their ``config=`` parameter, and each constructor takes
exactly the knobs it understands under its canonical name.

Explicit keyword arguments always win over the config — a config is a
bundle of *defaults*, not an override layer — so call sites can share one
config and still specialize individual runs::

    cfg = EngineConfig(batch_size=64, block_mode=True, checkpoint_every=16)
    sim = Simulation(graph, config=cfg)                  # takes all three
    eng = ExecutionEngine(graph, clock, config=cfg,
                          batch_size=8)                  # batch_size=8 wins

Factory-shaped knobs (the sharded constructors need one ETS policy and one
feedback controller *per shard*, because both hold state) reuse the same
field names: when :attr:`ets_policy` or :attr:`feedback` is a zero-argument
callable it is treated as the per-shard factory, and the single-engine
constructors call it once.  Instances are passed through unchanged by the
single-engine constructors and rejected by the sharded ones.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Iterable

from .errors import ExecutionError

__all__ = ["EngineConfig"]


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Canonical engine-construction knobs, shareable across constructors.

    Attributes:
        batch_size: Micro-batch width (1 = tuple-at-a-time).
        block_mode: Columnar execution (see
            :class:`~repro.core.execution.ExecutionEngine`).
        checkpoint_every: Checkpoint cadence in engine rounds; None
            disables.
        observers: Instrumentation observers attached to the run (see
            :mod:`repro.obs`).
        feedback: A :class:`~repro.feedback.FeedbackController` instance,
            or a zero-argument factory of them.  Sharded constructors
            require the factory form (one controller per shard); the
            single-engine constructors accept either and call a factory
            once.
        ets_policy: An :class:`~repro.core.ets.EtsPolicy` instance or a
            zero-argument factory, with the same instance-vs-factory rules
            as :attr:`feedback`.
        recovery: A bound-able :class:`~repro.recovery.RecoveryManager`
            (single-engine constructors) — sharded runs take
            :attr:`state_dir` instead, since each shard owns its manager.
        state_dir: Root directory for durable state (WAL + checkpoints);
            consumed by the sharded constructors.
        max_steps_per_round: Livelock safety valve; None = unbounded.
    """

    batch_size: int = 1
    block_mode: bool = False
    checkpoint_every: int | None = None
    observers: tuple = ()
    feedback: Any = None
    ets_policy: Any = None
    recovery: Any = None
    state_dir: Any = None
    max_steps_per_round: int | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ExecutionError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ExecutionError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}")
        if not isinstance(self.observers, tuple):
            # Accept any iterable at construction; store a tuple so one
            # config can parameterize many runs without shared-list aliasing.
            object.__setattr__(self, "observers", tuple(self.observers))

    # ------------------------------------------------------------------ #
    # Resolution helpers used by the four constructors

    def resolve(self, overrides: dict[str, Any],
                defaults: dict[str, Any]) -> dict[str, Any]:
        """Merge explicit kwargs over this config over ctor defaults.

        ``overrides`` maps knob name to the value the caller passed;
        ``defaults`` maps the same names to the constructor's defaults.
        A knob equal to its default falls back to the config's value
        (explicit kwargs win; re-passing the default is indistinguishable
        from omitting it, which is the documented contract).
        """
        out: dict[str, Any] = {}
        for name, default in defaults.items():
            value = overrides.get(name, default)
            if value == default:
                value = getattr(self, name)
            out[name] = value
        return out

    def resolved_observers(self,
                           explicit: Iterable | None) -> list:
        """Explicit observers win; otherwise the config's (as a list)."""
        if explicit:
            return list(explicit)
        return list(self.observers)

    def feedback_instance(self) -> Any:
        """The feedback controller for a single engine (factory called)."""
        return _instantiate(self.feedback)

    def feedback_factory(self) -> Any:
        """The per-shard feedback factory (instances are rejected)."""
        return _require_factory(self.feedback, "feedback")

    def ets_policy_instance(self) -> Any:
        """The ETS policy for a single engine (factory called)."""
        return _instantiate(self.ets_policy)

    def ets_policy_factory(self) -> Any:
        """The per-shard ETS policy factory (instances are rejected)."""
        return _require_factory(self.ets_policy, "ets_policy")

    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy with ``changes`` applied (dataclasses.replace spelling)."""
        current = {f.name: getattr(self, f.name)
                   for f in dataclass_fields(self)}
        current.update(changes)
        return EngineConfig(**current)


def _instantiate(knob: Any) -> Any:
    # Policies and controllers are plain objects (never callable); the
    # factory form is anything callable — a lambda, a partial, or the
    # class itself.
    if knob is not None and callable(knob):
        return knob()
    return knob


def _require_factory(knob: Any, name: str) -> Any:
    if knob is None or callable(knob):
        return knob
    raise ExecutionError(
        f"sharded engines need a zero-argument {name} factory (one "
        f"instance per shard, since both hold state); got an instance: "
        f"{knob!r}")
