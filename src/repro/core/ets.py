"""ETS policies: how (and whether) stalled sources produce punctuation.

The experiments compare four scenarios (paper Section 6); the first three
map onto policy objects plugged into the execution engine, the fourth is a
property of the streams themselves:

* **A — no ETS**: :class:`NoEts`; idle-waiting runs its course.
* **B — periodic ETS**: :class:`NoEts` at the engine plus a
  :class:`PeriodicEtsSchedule` that the simulation kernel turns into
  heartbeat-injection events at fixed rates (the Gigascope approach of
  Johnson et al., reference [9]).
* **C — on-demand ETS**: :class:`OnDemandEts`; the engine's Backtrack rule
  invokes the policy when it reaches a source with an empty buffer, and the
  generated punctuation rides down exactly the path that was backtracked.
* **D — latent timestamps**: no policy involved; latent streams never gate.

All of these assume live, well-behaved sources.  When a source can die or
its clock can misbehave, any policy here can be wrapped in the degradation
ladder from :mod:`repro.faults.degrade` (stall detection → fallback
heartbeat trains → quarantine), which delegates to the wrapped policy on
the healthy path and takes over stamp generation only while a source is
flagged as stalled (see DESIGN.md §4c).
"""

from __future__ import annotations

from typing import Mapping

from .errors import PolicyError
from .operators.source import SourceNode
from .timestamps import EtsGenerator, default_generator_for
from .tuples import TimestampKind

__all__ = ["AdaptiveHeartbeatSchedule", "EtsPolicy", "NoEts",
           "OnDemandEts", "PeriodicEtsSchedule"]


class EtsPolicy:
    """Engine-side hook invoked when backtracking reaches a stalled source."""

    def on_source_stalled(self, source: SourceNode, now: float,
                          round_id: int) -> bool:
        """Try to produce an ETS at ``source``.

        Args:
            source: The source whose buffer the Backtrack rule found empty.
            now: Current virtual-clock time.
            round_id: The engine wake-up round; policies may rate-limit per
                round to bound work per wake-up.

        Returns:
            True when a punctuation was injected into the source's stream
            (the engine then moves Forward down that path).
        """
        return False


    def snapshot_state(self) -> dict:
        """Versioned snapshot; the base policy carries no mutable state."""
        return {"version": 1}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise PolicyError(
                f"unsupported {type(self).__name__} state: {state!r}")


class NoEts(EtsPolicy):
    """Scenario A (and the engine half of scenario B): never generate."""


class OnDemandEts(EtsPolicy):
    """Scenario C: generate an ETS exactly when backtracking needs one.

    Args:
        external_delta: Skew bound used for externally timestamped sources
            (see :class:`~repro.core.timestamps.SkewBoundEts`).
        generators: Optional per-source-name overrides of the ETS generator.
        once_per_round: Limit generation to once per source per engine
            wake-up round.  This is both the termination argument for the
            backtracking loop and the paper's intent ("generate a *new* ETS
            value ... on the path on which backtracking just occurred");
            disabling it is allowed for experiments but the engine's round
            budget then bounds the loop instead.

    Attributes:
        generated: Total punctuation tuples injected by this policy.
        declined: Stalled-source callbacks that produced nothing.
    """

    def __init__(self, *, external_delta: float = 0.0,
                 generators: Mapping[str, EtsGenerator] | None = None,
                 once_per_round: bool = True) -> None:
        self.external_delta = external_delta
        self._overrides = dict(generators or {})
        self._resolved: dict[str, EtsGenerator | None] = {}
        self.once_per_round = once_per_round
        self.generated = 0
        self.declined = 0

    def _generator_for(self, source: SourceNode) -> EtsGenerator | None:
        if source.name in self._resolved:
            return self._resolved[source.name]
        generator = self._overrides.get(source.name)
        if generator is None:
            generator = default_generator_for(
                source, external_delta=self.external_delta)
        self._resolved[source.name] = generator
        return generator

    def snapshot_state(self) -> dict:
        """Versioned snapshot of generation counters.

        The generator-resolution cache is derived (rebuilt lazily from the
        source's own statistics, which are checkpointed with the source), so
        only the counters travel.
        """
        return {"version": 1, "generated": self.generated,
                "declined": self.declined}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise PolicyError(f"unsupported OnDemandEts state: {state!r}")
        self.generated = state["generated"]
        self.declined = state["declined"]

    def on_source_stalled(self, source: SourceNode, now: float,
                          round_id: int) -> bool:
        if self.once_per_round and source.last_ets_round == round_id:
            self.declined += 1
            return False
        generator = self._generator_for(source)
        if generator is None:
            self.declined += 1
            return False
        ts = generator.propose(source, now)
        if ts is None:
            self.declined += 1
            return False
        injected = source.inject_punctuation(ts, origin=f"ets:{source.name}")
        if injected:
            source.last_ets_round = round_id
            self.generated += 1
        else:
            self.declined += 1
        return injected


class PeriodicEtsSchedule:
    """Scenario B: fixed-rate heartbeat punctuation per source.

    This object is *declarative*; the simulation kernel reads it and creates
    the periodic injection events (the engine never generates anything in
    scenario B).  Rates are punctuation tuples per stream second.

    Args:
        rates: Mapping from source name to injection rate; sources absent
            from the map get no heartbeats, matching the paper's setup where
            only the sparse stream is punctuated.
        phase: Offset of the first injection, as a fraction of the period
            (default 1.0: first heartbeat after one full period).
    """

    def __init__(self, rates: Mapping[str, float], *, phase: float = 1.0) -> None:
        for name, rate in rates.items():
            if rate <= 0:
                raise PolicyError(
                    f"periodic ETS rate for {name!r} must be positive, "
                    f"got {rate}"
                )
        if phase <= 0:
            raise PolicyError(f"phase must be positive, got {phase}")
        self.rates = dict(rates)
        self.phase = phase

    def period_for(self, source_name: str) -> float | None:
        rate = self.rates.get(source_name)
        if rate is None:
            return None
        return 1.0 / rate

    def bind(self, graph) -> None:
        """Called once by the kernel before the first injection.

        The fixed schedule needs no context; adaptive subclasses use this to
        look up the streams they track.
        """

    def next_period(self, source: SourceNode, now: float) -> float:
        """Period until the next heartbeat on ``source`` (fixed by default)."""
        period = self.period_for(source.name)
        assert period is not None
        return period

    def applies_to(self, source: SourceNode) -> bool:
        return (source.name in self.rates
                and source.timestamp_kind is not TimestampKind.LATENT)

    def snapshot_state(self) -> dict:
        """Versioned snapshot; the fixed schedule is purely declarative."""
        return {"version": 1}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise PolicyError(
                f"unsupported {type(self).__name__} state: {state!r}")


class AdaptiveHeartbeatSchedule(PeriodicEtsSchedule):
    """Heartbeats whose rate tracks the traffic they must unblock.

    The paper observes that the right periodic rate "largely depends on the
    load conditions of the various streams": punctuation on the sparse
    stream A should match the frequency of tuples on the busy stream B.
    This schedule is the natural adaptive baseline between fixed-rate
    heartbeats (scenario B) and on-demand ETS (scenario C): each punctuated
    source re-estimates, at every injection, the recent arrival rate of a
    designated *driver* stream and sets the next period to match it.

    Args:
        drivers: Mapping from punctuated source name to the name of the
            stream whose rate it should match (the busy stream).
        min_rate / max_rate: Clamp for the adapted rate, in heartbeats per
            second; the minimum also serves as the cold-start rate.

    Even adapted this way, heartbeats remain reactive-with-lag: they match
    the *recent past* rate, so the first tuples of a burst still wait about
    one (pre-burst) period — which is exactly what the X6-style benches
    show and on-demand ETS avoids.
    """

    def __init__(self, drivers: Mapping[str, str], *,
                 min_rate: float = 0.1, max_rate: float = 1000.0,
                 estimation_window: float = 1.0,
                 phase: float = 1.0) -> None:
        if min_rate <= 0 or max_rate < min_rate:
            raise PolicyError(
                f"need 0 < min_rate <= max_rate, got {min_rate}, {max_rate}"
            )
        if estimation_window <= 0:
            raise PolicyError(
                f"estimation_window must be positive, got {estimation_window}"
            )
        super().__init__({name: min_rate for name in drivers}, phase=phase)
        self.drivers = dict(drivers)
        self.min_rate = min_rate
        self.max_rate = max_rate
        #: Minimum span (stream seconds) over which the driver rate is
        #: measured; shorter gaps reuse the previous estimate.  Without this
        #: floor, a fast adapted rate would shrink its own observation
        #: window until single-tuple noise whipsaws the estimate.
        self.estimation_window = estimation_window
        self._graph = None
        self._last_counts: dict[str, tuple[float, int]] = {}
        self._current_rate: dict[str, float] = {}

    def bind(self, graph) -> None:
        for name, driver in self.drivers.items():
            if driver not in graph:
                raise PolicyError(
                    f"adaptive heartbeat for {name!r}: driver stream "
                    f"{driver!r} is not in the graph"
                )
        self._graph = graph

    def _observed_rate(self, source_name: str, now: float) -> float:
        assert self._graph is not None, "bind() must run before injections"
        driver = self._graph[self.drivers[source_name]]
        count = driver.ingested_count
        last = self._last_counts.get(source_name)
        if last is None:
            self._last_counts[source_name] = (now, count)
            return self.min_rate
        last_t, last_count = last
        elapsed = now - last_t
        if elapsed < self.estimation_window:
            # Too little evidence since the last estimate: hold the rate.
            return self._current_rate.get(source_name, self.min_rate)
        self._last_counts[source_name] = (now, count)
        return (count - last_count) / elapsed

    def next_period(self, source: SourceNode, now: float) -> float:
        rate = self._observed_rate(source.name, now)
        rate = min(self.max_rate, max(self.min_rate, rate))
        self._current_rate[source.name] = rate
        return 1.0 / rate

    def snapshot_state(self) -> dict:
        """Versioned snapshot of the rate-estimation state.

        The graph binding itself is wiring, not state; ``bind`` re-runs on
        the rebuilt graph before injections resume.
        """
        return {
            "version": 1,
            "last_counts": dict(self._last_counts),
            "current_rate": dict(self._current_rate),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise PolicyError(
                f"unsupported AdaptiveHeartbeatSchedule state: {state!r}")
        self._last_counts = dict(state["last_counts"])
        self._current_rate = dict(state["current_rate"])
