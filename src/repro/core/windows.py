"""Window machinery for joins and aggregates.

The paper adopts the symmetric window-join semantics of Kang, Naughton and
Viglas (ICDE 2003): each join input maintains a window buffer ``W(X)`` of
recently consumed tuples; an arriving tuple on the other input probes the
window, then the probing tuple is inserted into its own window and expired
tuples are removed.

Four window policies are provided:

* :class:`TimeWindow` — keep tuples whose timestamp is within ``span`` of the
  reference timestamp (time-based sliding window);
* :class:`CountWindow` — keep the last ``size`` tuples (tuple-based window);
* :class:`IndexedTimeWindow` / :class:`IndexedCountWindow` — the same
  retention policies with the contents additionally hash-partitioned into
  per-key buckets, so an equality join can probe one bucket instead of
  scanning the whole window.

All expose the same small interface (`insert`, `expire`, `matches`,
iteration), so the join and aggregate operators are policy-agnostic; the
indexed variants add ``probe(key)``, the O(bucket) equality fast path.

Amortized expiry of the indexed windows
---------------------------------------

Keeping every bucket eagerly trimmed would make ``expire(now)`` scan all
buckets — O(distinct keys) per probe even when nothing expires.  Instead the
index splits the work:

* a **global** tuple log (insertion order == timestamp order) is trimmed
  eagerly, so ``expire(now)`` stays O(dropped) and ``len``/iteration/the
  Fig.-8 memory metric remain exact;
* each **bucket** records shared-structure references and is purged
  **lazily** against the global horizon the moment it is probed.  A tuple is
  popped from its bucket exactly once, after it expired, so the lazy purges
  are O(dropped) amortized across a run, and an unprobed bucket costs no
  CPU at all;
* a **backstop sweep** purges every bucket once enough expirations have
  accumulated (at least ``max(64, live tuples)`` since the last sweep), so
  buckets that are *never* probed — an adaptive join that stays on the scan
  path probes no bucket at all — cannot retain expired tuples indefinitely.
  The sweep's cost is amortized against the expirations that triggered it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Iterator, Protocol, runtime_checkable

from .errors import ReproError
from .tuples import DataTuple

__all__ = [
    "WindowSpec",
    "WindowProtocol",
    "TimeWindow",
    "CountWindow",
    "IndexedTimeWindow",
    "IndexedCountWindow",
    "make_window",
]

#: Extracts the partition key from a tuple's payload (computed once, at
#: insert).  Must return a hashable value for the indexed windows.
KeyFn = Callable[[Any], Any]


@runtime_checkable
class WindowProtocol(Protocol):
    """The full window contract the join operators program against.

    Every window — including the :class:`~repro.core.operators.join` module's
    empty-side stub — implements all of these; the indexed fast path and the
    scan path may then be swapped freely without attribute errors.
    """

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[DataTuple]: ...

    def insert(self, tup: DataTuple) -> None: ...

    def insert_run(self, tuples: Iterable[DataTuple]) -> None: ...

    def expire(self, now: float) -> int: ...

    def matches(self, probe_ts: float) -> Iterator[DataTuple]: ...

    def probe(self, key: Any) -> Iterable[DataTuple]: ...


class WindowSpec:
    """Declarative description of a window, used by the query builder.

    Attributes:
        mode: ``"time"`` or ``"count"``.
        extent: Window span in stream-time seconds (time mode) or number of
            tuples (count mode).
    """

    __slots__ = ("mode", "extent")

    def __init__(self, mode: str, extent: float) -> None:
        if mode not in ("time", "count"):
            raise ReproError(f"unknown window mode {mode!r}")
        if extent <= 0:
            raise ReproError(f"window extent must be positive, got {extent}")
        if mode == "count" and int(extent) != extent:
            raise ReproError("count windows need an integer extent")
        self.mode = mode
        self.extent = extent

    @classmethod
    def time(cls, seconds: float) -> "WindowSpec":
        return cls("time", seconds)

    @classmethod
    def count(cls, size: int) -> "WindowSpec":
        return cls("count", size)

    def build(self, key_fn: KeyFn | None = None) \
            -> "TimeWindow | CountWindow | IndexedTimeWindow | IndexedCountWindow":
        return make_window(self, key_fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WindowSpec({self.mode!r}, {self.extent!r})"


class TimeWindow:
    """A time-based sliding window buffer ``W(X)``.

    Holds data tuples in timestamp order.  ``expire(now)`` drops every tuple
    whose timestamp is older than ``now - span``.  Tuples carrying equal
    timestamps are all retained (simultaneous tuples are first-class citizens
    in this paper).
    """

    __slots__ = ("span", "_items")

    def __init__(self, span: float) -> None:
        if span <= 0:
            raise ReproError(f"time window span must be positive, got {span}")
        self.span = span
        self._items: deque[DataTuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataTuple]:
        return iter(self._items)

    def insert(self, tup: DataTuple) -> None:
        """Append ``tup``; tuples must arrive in timestamp order."""
        if self._items and tup.ts < self._items[-1].ts:
            raise ReproError(
                f"window insert out of order: {tup.ts} after {self._items[-1].ts}"
            )
        self._items.append(tup)

    def insert_run(self, tuples: Iterable[DataTuple]) -> None:
        """Bulk insert: equivalent to ``expire(t.ts); insert(t)`` per tuple.

        The per-tuple interleaving matters — a run longer than the span
        must expire its own early tuples exactly as sequential insertion
        would — so the loop replays it, with the attribute lookups hoisted.
        """
        items = self._items
        span = self.span
        for tup in tuples:
            horizon = tup.ts - span
            while items and items[0].ts < horizon:
                items.popleft()
            if items and tup.ts < items[-1].ts:
                raise ReproError(
                    f"window insert out of order: {tup.ts} after "
                    f"{items[-1].ts}"
                )
            items.append(tup)

    def expire(self, now: float) -> int:
        """Drop tuples with ``ts < now - span``; return how many were dropped."""
        horizon = now - self.span
        dropped = 0
        items = self._items
        while items and items[0].ts < horizon:
            items.popleft()
            dropped += 1
        return dropped

    def matches(self, probe_ts: float) -> Iterator[DataTuple]:
        """Yield window tuples joinable with a probe at ``probe_ts``.

        With expiry performed eagerly against the probing tuple's timestamp,
        every remaining tuple is within the window, so this is simply
        iteration; it exists so callers read as the paper's "join of the
        tuple in A with the tuples in W(B)".
        """
        return iter(self._items)

    def probe(self, key: Any) -> Iterable[DataTuple]:
        """Key-indexed probing requires an indexed window."""
        raise ReproError(
            "TimeWindow is not key-indexed; build it with a key_fn "
            "(IndexedTimeWindow) to probe by key"
        )

    def snapshot_state(self) -> dict:
        """Versioned snapshot of window contents (checkpointing)."""
        return {"version": 1, "items": list(self._items)}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ReproError(f"unsupported TimeWindow state: {state!r}")
        self._items = deque(state["items"])


class CountWindow:
    """A tuple-count sliding window buffer holding the last ``size`` tuples."""

    __slots__ = ("size", "_items")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ReproError(f"count window size must be positive, got {size}")
        self.size = int(size)
        self._items: deque[DataTuple] = deque(maxlen=self.size)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataTuple]:
        return iter(self._items)

    def insert(self, tup: DataTuple) -> None:
        """Append ``tup``, evicting the oldest tuple when full."""
        self._items.append(tup)

    def insert_run(self, tuples: Iterable[DataTuple]) -> None:
        """Bulk insert: the bounded deque evicts exactly as per-tuple
        insertion would, so this is one C-level extend."""
        self._items.extend(tuples)

    def expire(self, now: float) -> int:
        """Count windows expire by insertion, so this is a no-op."""
        return 0

    def matches(self, probe_ts: float) -> Iterator[DataTuple]:
        return iter(self._items)

    def probe(self, key: Any) -> Iterable[DataTuple]:
        """Key-indexed probing requires an indexed window."""
        raise ReproError(
            "CountWindow is not key-indexed; build it with a key_fn "
            "(IndexedCountWindow) to probe by key"
        )

    def snapshot_state(self) -> dict:
        """Versioned snapshot of window contents (checkpointing)."""
        return {"version": 1, "items": list(self._items)}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ReproError(f"unsupported CountWindow state: {state!r}")
        self._items = deque(state["items"], maxlen=self.size)


def _hash_key(key: Any, window: str) -> Any:
    """Validate hashability once, with an actionable error on failure."""
    try:
        hash(key)
    except TypeError:
        raise ReproError(
            f"{window}: join key {key!r} is unhashable — equality fast "
            "paths need hashable key values; use predicate=... (scan path) "
            "for unhashable keys"
        ) from None
    return key


class IndexedTimeWindow:
    """A time-based sliding window hash-partitioned into per-key buckets.

    Retention is identical to :class:`TimeWindow` (``expire(now)`` drops
    tuples with ``ts < now - span``); in addition every tuple is appended to
    the bucket of its key (extracted once, at insert), so ``probe(key)``
    touches only the tuples an equality join can match.

    Expiry is split between an eager global log (O(dropped), keeps ``len``
    and iteration exact) and lazy per-bucket purges against the global
    horizon (see the module docstring for the amortization argument).
    """

    __slots__ = ("span", "key_fn", "_items", "_buckets", "_horizon", "_stale")

    def __init__(self, span: float, key_fn: KeyFn) -> None:
        if span <= 0:
            raise ReproError(f"time window span must be positive, got {span}")
        self.span = span
        self.key_fn = key_fn
        self._items: deque[DataTuple] = deque()
        self._buckets: dict[Any, deque[DataTuple]] = {}
        self._horizon = float("-inf")
        self._stale = 0  # drops since the last backstop sweep

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataTuple]:
        return iter(self._items)

    @property
    def bucket_count(self) -> int:
        """Live buckets (unpurged empties included) — introspection only."""
        return len(self._buckets)

    def insert(self, tup: DataTuple) -> None:
        """Append ``tup``; tuples must arrive in timestamp order."""
        items = self._items
        if items and tup.ts < items[-1].ts:
            raise ReproError(
                f"window insert out of order: {tup.ts} after {items[-1].ts}"
            )
        items.append(tup)
        key = _hash_key(self.key_fn(tup.payload), "IndexedTimeWindow")
        if key == key:  # NaN keys never match anything (scan parity)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = deque()
            bucket.append(tup)

    def expire(self, now: float) -> int:
        """Drop tuples with ``ts < now - span``; return how many were dropped.

        Only the global log is trimmed here; buckets catch up lazily when
        probed, against the horizon recorded now.
        """
        horizon = now - self.span
        if horizon > self._horizon:
            self._horizon = horizon
        dropped = 0
        items = self._items
        while items and items[0].ts < horizon:
            items.popleft()
            dropped += 1
        if dropped:
            self._stale += dropped
            if self._stale >= max(64, len(items)):
                self._sweep()
        return dropped

    def insert_run(self, tuples: Iterable[DataTuple]) -> None:
        """Bulk insert: equivalent to ``expire(t.ts); insert(t)`` per tuple.

        Fast path: when even the run's final horizon cannot drop the oldest
        live tuple, no expiry can occur anywhere in the run — the horizon is
        advanced once and the rows are appended straight into the log and
        their buckets (``_stale`` untouched, so backstop-sweep timing is
        identical by construction).  Otherwise the per-tuple interleaving is
        replayed exactly: a run longer than the span must expire its own
        early tuples, and sweep thresholds depend on per-step drop counts.
        """
        if not isinstance(tuples, list):
            tuples = list(tuples)
        if not tuples:
            return
        items = self._items
        horizon = tuples[-1].ts - self.span
        head_ts = items[0].ts if items else tuples[0].ts
        if head_ts >= horizon:
            if horizon > self._horizon:
                self._horizon = horizon
            prev = items[-1].ts if items else tuples[0].ts
            key_fn = self.key_fn
            buckets = self._buckets
            for tup in tuples:
                if tup.ts < prev:
                    raise ReproError(
                        f"window insert out of order: {tup.ts} after {prev}"
                    )
                prev = tup.ts
                items.append(tup)
                key = _hash_key(key_fn(tup.payload), "IndexedTimeWindow")
                if key == key:  # NaN keys never match anything (scan parity)
                    bucket = buckets.get(key)
                    if bucket is None:
                        bucket = buckets[key] = deque()
                    bucket.append(tup)
            return
        expire, insert = self.expire, self.insert
        for tup in tuples:
            expire(tup.ts)
            insert(tup)

    def _sweep(self) -> None:
        """Purge every bucket against the horizon (the backstop of the
        module docstring's amortization scheme, for never-probed buckets)."""
        self._stale = 0
        horizon = self._horizon
        for key in list(self._buckets):
            bucket = self._buckets[key]
            while bucket and bucket[0].ts < horizon:
                bucket.popleft()
            if not bucket:
                del self._buckets[key]

    def matches(self, probe_ts: float) -> Iterator[DataTuple]:
        """Scan-compatible probing: every live tuple, in timestamp order."""
        return iter(self._items)

    def probe(self, key: Any) -> Iterable[DataTuple]:
        """The tuples an equality join at ``key`` can match, oldest first.

        Purges the bucket's expired head run first (lazy half of the
        amortized expiry) and drops the bucket entirely once empty, so
        stale keys do not accumulate dict entries.
        """
        if key != key:  # NaN: != everything, including itself, under scan
            return ()
        _hash_key(key, "IndexedTimeWindow")
        bucket = self._buckets.get(key)
        if bucket is None:
            return ()
        horizon = self._horizon
        while bucket and bucket[0].ts < horizon:
            bucket.popleft()
        if not bucket:
            del self._buckets[key]
            return ()
        return bucket

    def snapshot_state(self) -> dict:
        """Versioned snapshot: only the global log travels.

        Buckets are derived state (key_fn over the log) and may hold
        lazily-unpurged expired tuples; they are reconstructed from the
        global log on restore, which also sheds that dead weight.
        """
        return {"version": 1, "items": list(self._items),
                "horizon": self._horizon}

    def restore_state(self, state: dict) -> None:
        """Restore the global log and rebuild per-key buckets from it."""
        if state.get("version") != 1:
            raise ReproError(f"unsupported IndexedTimeWindow state: {state!r}")
        self._items = deque(state["items"])
        self._horizon = state["horizon"]
        self._stale = 0
        self._buckets = {}
        for tup in self._items:
            key = _hash_key(self.key_fn(tup.payload), "IndexedTimeWindow")
            if key == key:  # NaN keys never match anything (scan parity)
                bucket = self._buckets.get(key)
                if bucket is None:
                    bucket = self._buckets[key] = deque()
                bucket.append(tup)


class IndexedCountWindow:
    """A last-``size``-tuples window hash-partitioned into per-key buckets.

    Retention is identical to :class:`CountWindow`; buckets additionally
    record each tuple's global insertion number so a probed bucket can
    lazily discard entries that the global ring has already evicted.
    """

    __slots__ = ("size", "key_fn", "_items", "_buckets", "_inserted",
                 "_swept_at")

    def __init__(self, size: int, key_fn: KeyFn) -> None:
        if size <= 0:
            raise ReproError(f"count window size must be positive, got {size}")
        self.size = int(size)
        self.key_fn = key_fn
        self._items: deque[DataTuple] = deque(maxlen=self.size)
        self._buckets: dict[Any, deque[tuple[int, DataTuple]]] = {}
        self._inserted = 0
        self._swept_at = 0  # insertion count at the last backstop sweep

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataTuple]:
        return iter(self._items)

    @property
    def bucket_count(self) -> int:
        """Live buckets (unpurged empties included) — introspection only."""
        return len(self._buckets)

    def insert(self, tup: DataTuple) -> None:
        """Append ``tup``, evicting the globally oldest tuple when full."""
        self._items.append(tup)
        self._inserted += 1
        key = _hash_key(self.key_fn(tup.payload), "IndexedCountWindow")
        if key == key:  # NaN keys never match anything (scan parity)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = deque()
            bucket.append((self._inserted, tup))
        if self._inserted - self._swept_at >= max(64, self.size):
            self._sweep()

    def insert_run(self, tuples: Iterable[DataTuple]) -> None:
        """Bulk insert: replays per-tuple insertion (expiry is by count and
        the backstop sweep fires at exact insertion numbers, so there is no
        batched shortcut that stays bit-identical)."""
        insert = self.insert
        for tup in tuples:
            insert(tup)

    def _sweep(self) -> None:
        """Purge every bucket of globally evicted entries (the backstop of
        the module docstring's amortization scheme, for never-probed
        buckets)."""
        self._swept_at = self._inserted
        oldest_live = self._inserted - self.size
        for key in list(self._buckets):
            bucket = self._buckets[key]
            while bucket and bucket[0][0] <= oldest_live:
                bucket.popleft()
            if not bucket:
                del self._buckets[key]

    def expire(self, now: float) -> int:
        """Count windows expire by insertion, so this is a no-op."""
        return 0

    def matches(self, probe_ts: float) -> Iterator[DataTuple]:
        return iter(self._items)

    def probe(self, key: Any) -> Iterable[DataTuple]:
        """The tuples an equality join at ``key`` can match, oldest first."""
        if key != key:  # NaN (see IndexedTimeWindow.probe)
            return ()
        _hash_key(key, "IndexedCountWindow")
        bucket = self._buckets.get(key)
        if bucket is None:
            return ()
        oldest_live = self._inserted - self.size  # insertion numbers > this
        while bucket and bucket[0][0] <= oldest_live:
            bucket.popleft()
        if not bucket:
            del self._buckets[key]
            return ()
        return (tup for _, tup in bucket)

    def snapshot_state(self) -> dict:
        """Versioned snapshot: only the global ring travels (see
        :meth:`IndexedTimeWindow.snapshot_state`)."""
        return {"version": 1, "items": list(self._items),
                "inserted": self._inserted}

    def restore_state(self, state: dict) -> None:
        """Restore the global ring and rebuild per-key buckets from it.

        Bucket entries carry global insertion numbers; only the last
        ``len(items)`` insertions are live, so position ``i`` in the
        restored ring was insertion ``inserted - len(items) + i + 1``.
        """
        if state.get("version") != 1:
            raise ReproError(f"unsupported IndexedCountWindow state: {state!r}")
        items = state["items"]
        self._items = deque(items, maxlen=self.size)
        self._inserted = state["inserted"]
        self._swept_at = self._inserted
        self._buckets = {}
        base = self._inserted - len(items)
        for i, tup in enumerate(items):
            key = _hash_key(self.key_fn(tup.payload), "IndexedCountWindow")
            if key == key:  # NaN keys never match anything (scan parity)
                bucket = self._buckets.get(key)
                if bucket is None:
                    bucket = self._buckets[key] = deque()
                bucket.append((base + i + 1, tup))


def make_window(spec: WindowSpec, key_fn: KeyFn | None = None) \
        -> TimeWindow | CountWindow | IndexedTimeWindow | IndexedCountWindow:
    """Instantiate the window buffer described by ``spec``.

    With ``key_fn`` the hash-indexed variant is built; without it, the
    plain scan window.
    """
    if spec.mode == "time":
        if key_fn is not None:
            return IndexedTimeWindow(spec.extent, key_fn)
        return TimeWindow(spec.extent)
    if key_fn is not None:
        return IndexedCountWindow(int(spec.extent), key_fn)
    return CountWindow(int(spec.extent))
