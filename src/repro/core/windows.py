"""Window machinery for joins and aggregates.

The paper adopts the symmetric window-join semantics of Kang, Naughton and
Viglas (ICDE 2003): each join input maintains a window buffer ``W(X)`` of
recently consumed tuples; an arriving tuple on the other input probes the
window, then the probing tuple is inserted into its own window and expired
tuples are removed.

Two window policies are provided:

* :class:`TimeWindow` — keep tuples whose timestamp is within ``span`` of the
  reference timestamp (time-based sliding window);
* :class:`CountWindow` — keep the last ``size`` tuples (tuple-based window).

Both expose the same small interface (`insert`, `expire`, iteration), so the
join and aggregate operators are policy-agnostic.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from .errors import ReproError
from .tuples import DataTuple

__all__ = ["WindowSpec", "TimeWindow", "CountWindow", "make_window"]


class WindowSpec:
    """Declarative description of a window, used by the query builder.

    Attributes:
        mode: ``"time"`` or ``"count"``.
        extent: Window span in stream-time seconds (time mode) or number of
            tuples (count mode).
    """

    __slots__ = ("mode", "extent")

    def __init__(self, mode: str, extent: float) -> None:
        if mode not in ("time", "count"):
            raise ReproError(f"unknown window mode {mode!r}")
        if extent <= 0:
            raise ReproError(f"window extent must be positive, got {extent}")
        if mode == "count" and int(extent) != extent:
            raise ReproError("count windows need an integer extent")
        self.mode = mode
        self.extent = extent

    @classmethod
    def time(cls, seconds: float) -> "WindowSpec":
        return cls("time", seconds)

    @classmethod
    def count(cls, size: int) -> "WindowSpec":
        return cls("count", size)

    def build(self) -> "TimeWindow | CountWindow":
        return make_window(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WindowSpec({self.mode!r}, {self.extent!r})"


class TimeWindow:
    """A time-based sliding window buffer ``W(X)``.

    Holds data tuples in timestamp order.  ``expire(now)`` drops every tuple
    whose timestamp is older than ``now - span``.  Tuples carrying equal
    timestamps are all retained (simultaneous tuples are first-class citizens
    in this paper).
    """

    __slots__ = ("span", "_items")

    def __init__(self, span: float) -> None:
        if span <= 0:
            raise ReproError(f"time window span must be positive, got {span}")
        self.span = span
        self._items: deque[DataTuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataTuple]:
        return iter(self._items)

    def insert(self, tup: DataTuple) -> None:
        """Append ``tup``; tuples must arrive in timestamp order."""
        if self._items and tup.ts < self._items[-1].ts:
            raise ReproError(
                f"window insert out of order: {tup.ts} after {self._items[-1].ts}"
            )
        self._items.append(tup)

    def expire(self, now: float) -> int:
        """Drop tuples with ``ts < now - span``; return how many were dropped."""
        horizon = now - self.span
        dropped = 0
        items = self._items
        while items and items[0].ts < horizon:
            items.popleft()
            dropped += 1
        return dropped

    def matches(self, probe_ts: float) -> Iterator[DataTuple]:
        """Yield window tuples joinable with a probe at ``probe_ts``.

        With expiry performed eagerly against the probing tuple's timestamp,
        every remaining tuple is within the window, so this is simply
        iteration; it exists so callers read as the paper's "join of the
        tuple in A with the tuples in W(B)".
        """
        return iter(self._items)


class CountWindow:
    """A tuple-count sliding window buffer holding the last ``size`` tuples."""

    __slots__ = ("size", "_items")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ReproError(f"count window size must be positive, got {size}")
        self.size = int(size)
        self._items: deque[DataTuple] = deque(maxlen=self.size)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataTuple]:
        return iter(self._items)

    def insert(self, tup: DataTuple) -> None:
        """Append ``tup``, evicting the oldest tuple when full."""
        self._items.append(tup)

    def expire(self, now: float) -> int:
        """Count windows expire by insertion, so this is a no-op."""
        return 0

    def matches(self, probe_ts: float) -> Iterator[DataTuple]:
        return iter(self._items)


def make_window(spec: WindowSpec) -> TimeWindow | CountWindow:
    """Instantiate the window buffer described by ``spec``."""
    if spec.mode == "time":
        return TimeWindow(spec.extent)
    return CountWindow(int(spec.extent))
