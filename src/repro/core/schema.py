"""Typed record schemas for streams.

Stream Mill streams are relations over time; each stream has a schema.  The
engine itself treats payloads as opaque, but schemas give examples, the query
builder, and the mini query language a way to validate records, name fields,
and derive output schemas for projections and joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from .errors import SchemaError

__all__ = ["Field", "Schema"]

_ALLOWED_TYPES = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "any": object,
}


@dataclass(frozen=True, slots=True)
class Field:
    """A named, typed field of a stream schema.

    Attributes:
        name: Field name; must be a valid Python identifier.
        type_name: One of ``int``, ``float``, ``str``, ``bool``, ``any``.
        nullable: Whether ``None`` is an acceptable value.
    """

    name: str
    type_name: str = "any"
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"field name {self.name!r} is not an identifier")
        if self.type_name not in _ALLOWED_TYPES:
            raise SchemaError(
                f"field {self.name!r}: unknown type {self.type_name!r}; "
                f"expected one of {sorted(_ALLOWED_TYPES)}"
            )

    @property
    def python_type(self) -> type:
        return _ALLOWED_TYPES[self.type_name]

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` unless ``value`` conforms to this field."""
        if value is None:
            if self.nullable:
                return
            raise SchemaError(f"field {self.name!r} is not nullable")
        if self.type_name == "any":
            return
        expected = self.python_type
        # bool is a subclass of int; keep them distinct for schema purposes.
        if expected is int and isinstance(value, bool):
            raise SchemaError(f"field {self.name!r}: expected int, got bool")
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            return  # ints are acceptable where floats are expected
        if not isinstance(value, expected):
            raise SchemaError(
                f"field {self.name!r}: expected {self.type_name}, "
                f"got {type(value).__name__}"
            )


@dataclass(frozen=True, slots=True)
class Schema:
    """An ordered collection of named fields describing one stream's records.

    Records are plain mappings (usually dicts) from field name to value.
    """

    fields: tuple[Field, ...] = ()
    name: str = ""
    _by_name: Mapping[str, Field] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        by_name: dict[str, Field] = {}
        for f in self.fields:
            if f.name in by_name:
                raise SchemaError(f"duplicate field {f.name!r} in schema {self.name!r}")
            by_name[f.name] = f
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def of(cls, name: str = "", **field_types: str) -> "Schema":
        """Build a schema from keyword arguments.

        Example::

            Schema.of("packets", src="str", bytes="int", rtt="float")
        """
        return cls(tuple(Field(n, t) for n, t in field_types.items()), name=name)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, field_name: str) -> bool:
        return field_name in self._by_name

    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no field {name!r}; "
                f"fields are {self.field_names()}"
            ) from None

    def validate(self, record: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` unless ``record`` conforms to this schema."""
        if not isinstance(record, Mapping):
            raise SchemaError(
                f"schema {self.name!r}: record must be a mapping, "
                f"got {type(record).__name__}"
            )
        for f in self.fields:
            if f.name not in record:
                if f.nullable:
                    continue
                raise SchemaError(f"schema {self.name!r}: missing field {f.name!r}")
            f.validate(record[f.name])
        extra = set(record) - set(self._by_name)
        if extra:
            raise SchemaError(
                f"schema {self.name!r}: unexpected fields {sorted(extra)}"
            )

    def project(self, names: Iterable[str], name: str = "") -> "Schema":
        """Return the sub-schema containing only ``names``, in the given order."""
        return Schema(tuple(self.field(n) for n in names), name=name or self.name)

    def join(self, other: "Schema", *, left_prefix: str = "", right_prefix: str = "",
             name: str = "") -> "Schema":
        """Return the concatenated schema of a join output.

        Colliding names must be disambiguated with prefixes, mirroring how the
        join operator prefixes payload keys.
        """
        fields: list[Field] = []
        seen: set[str] = set()
        for prefix, schema in ((left_prefix, self), (right_prefix, other)):
            for f in schema.fields:
                new_name = f"{prefix}{f.name}" if prefix else f.name
                if new_name in seen:
                    raise SchemaError(
                        f"join schema collision on {new_name!r}; pass prefixes"
                    )
                seen.add(new_name)
                fields.append(Field(new_name, f.type_name, f.nullable))
        return Schema(tuple(fields), name=name)
