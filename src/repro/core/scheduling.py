"""Alternative operator-scheduling strategies (ablation X4).

The paper's on-demand ETS is *integrated with the DFS backtracking* of the
execution model (Section 4): the act of backtracking to a stalled source is
itself the trigger for generating a timestamp.  The DSMS scheduling
literature the paper cites (Carney et al., VLDB'03; Sharaf et al.; Babcock
et al.'s Chain) studies other strategies, most simply round-robin.  This
module provides a round-robin engine so the benches can quantify what the
DFS integration buys:

* **Round-robin** visits every operator each pass, paying a visit cost even
  for operators with nothing to do, and needs an explicit end-of-pass poll
  of the sources to drive on-demand ETS.
* **DFS (the default engine)** touches only the active path and gets the
  ETS trigger for free from the Backtrack rule.

:class:`RoundRobinEngine` is drop-in compatible with
:class:`~repro.core.execution.ExecutionEngine` (same constructor and
``wakeup``), so the kernel accepts it unchanged.
"""

from __future__ import annotations

from .execution import ExecutionEngine
from .graph import QueryGraph
from .operators.base import Operator
from .operators.source import SourceNode

__all__ = ["RoundRobinEngine"]


class RoundRobinEngine(ExecutionEngine):
    """Fixed-order, batch-per-visit operator scheduling.

    Args:
        batch_size: Maximum elements an operator processes per visit before
            the scheduler moves on (the classical scheduling quantum).  Note
            this is a *scheduling* quantum, not the base engine's micro-batch
            width: round-robin always executes scalar steps within a visit,
            so its simulated-time behavior is unchanged by the batched path.
        visit_cost: Simulated CPU seconds charged per operator *visit*,
            whether or not the operator had work — the context-switch
            overhead that depth-first traversal avoids.  Defaults to the
            cost model's ``scheduling_overhead``.

    Everything else (cost model, ETS policy, idle tracking, the
    ``deliver_due`` hook) behaves exactly as in the base engine.
    """

    def __init__(self, graph: QueryGraph, clock, *, batch_size: int = 16,
                 visit_cost: float | None = None, **kwargs) -> None:
        super().__init__(graph, clock, **kwargs)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        if visit_cost is not None:
            self.visit_cost = visit_cost
        elif self.cost_model is not None:
            self.visit_cost = self.cost_model.scheduling_overhead
        else:
            self.visit_cost = 0.0
        self._order: list[Operator] = [
            op for op in graph.topological_order()
            if not isinstance(op, SourceNode)
        ]
        self._sources = graph.sources()

    def wakeup(self, entry: SourceNode | Operator | None = None) -> None:
        """Run fixed-order passes to quiescence (entry hints are ignored —
        round-robin has no notion of 'start where the data landed')."""
        self._round_id += 1
        self.stats.rounds += 1
        self._refresh_idle()
        while True:
            self._pump_due()
            progressed = False
            for op in self._order:
                if self.visit_cost:
                    self.clock.advance(self.visit_cost)
                    self.stats.busy_time += self.visit_cost
                served = 0
                while served < self.batch_size and op.more():
                    self._step(op)
                    served += 1
                    progressed = True
            if not progressed:
                # End-of-pass source poll: round-robin has no backtracking,
                # so on-demand ETS needs this explicit trigger.
                for source in self._sources:
                    if self._try_ets(source):
                        progressed = True
            if not progressed:
                break
        self._refresh_idle()
