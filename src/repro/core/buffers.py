"""Stream buffers (query-graph arcs) and Time-Stamp Memory registers.

A directed arc from operator ``Q_i`` to ``Q_j`` in the query graph is a FIFO
buffer: ``Q_i`` appends tuples at the tail (*production*) and ``Q_j`` removes
them from the front (*consumption*).  Buffers also host the consumer-side
**TSM register** introduced by the paper (Section 4.1): the register holds the
timestamp of the most recent element seen at that input and keeps its value
while the buffer is empty, which is what allows a punctuation to keep
unblocking data tuples waiting on the *other* inputs of an IWP operator.

All buffers register with a :class:`BufferRegistry` that maintains the global
live-tuple count and its running peak, making the paper's "peak total queue
size" metric (Figure 8) O(1) per enqueue/dequeue.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Sequence

from .columnar import ColumnarBlock
from .errors import TimestampError
from .tuples import LATENT_TS, StreamElement

__all__ = ["TSMRegister", "BufferRegistry", "StreamBuffer"]


class TSMRegister:
    """Time-Stamp Memory register for one IWP-operator input (paper Fig. 5).

    The register value is automatically updated with the timestamp of the
    current (head) input element and *remains* until the next element updates
    it.  An unset register reports :data:`LATENT_TS` so that an input that has
    never produced anything does not gate ``min`` computations upward.
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = LATENT_TS

    @property
    def value(self) -> float:
        return self._value

    @property
    def is_set(self) -> bool:
        return self._value != LATENT_TS

    def update(self, ts: float) -> None:
        """Record that an element with timestamp ``ts`` is/was at this input.

        Latent (unstamped) elements do not move the register.
        """
        if ts == LATENT_TS:
            return
        if ts > self._value:
            self._value = ts

    def reset(self) -> None:
        self._value = LATENT_TS

    def snapshot_state(self) -> dict:
        """Versioned plain-data snapshot of the register (checkpointing)."""
        return {"version": 1, "value": self._value}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state.get("version") != 1:
            raise ValueError(f"unsupported TSMRegister state: {state!r}")
        self._value = state["value"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TSMRegister({self._value!r})"


class BufferRegistry:
    """Tracks aggregate occupancy across every buffer of a query graph.

    The paper's memory metric is "peak total buffer size, in terms of total
    number of tuples in the buffers" — this registry maintains exactly that,
    incrementally.  It can also invoke an observer on every change so that
    metrics collectors can record occupancy-over-time series.
    """

    def __init__(self) -> None:
        self._total = 0
        self._peak = 0
        self._interval_peak = 0
        self._mutations = 0
        self._observer: Callable[[int], None] | None = None
        self._observers: list[Callable[[int], None]] = []
        #: Optional callback invoked with structured fields *before* an
        #: ingest/order violation raises — the hook tracing and fault
        #: monitors use to emit a trace event even when the error is about
        #: to unwind the stack.  Signature: ``on_violation(**fields)``.
        self.on_violation: Callable[..., None] | None = None

    def notify_violation(self, **fields) -> None:
        """Report a violation (about to raise) to the installed observer."""
        if self.on_violation is not None:
            self.on_violation(**fields)

    @property
    def total(self) -> int:
        """Current total number of elements across all registered buffers."""
        return self._total

    @property
    def peak(self) -> int:
        """Largest total ever observed."""
        return self._peak

    @property
    def mutations(self) -> int:
        """Monotonic count of buffer changes (pushes, pops, drains).

        The engine's walk uses this as a cheap version stamp: a set of
        operators known to be unable to execute stays valid exactly until
        any buffer in the graph changes.  Counts calls, not net occupancy —
        a pop immediately followed by a push still advances the stamp.
        """
        return self._mutations

    def set_observer(self, observer: Callable[[int], None] | None) -> None:
        """Install a callback invoked with the new total after every change."""
        self._observer = observer

    def add_observer(self, observer: Callable[[int], None]) -> None:
        """Add one more change callback (the event-bus wiring uses this;
        unlike :meth:`set_observer` it does not displace existing hooks)."""
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[[int], None]) -> None:
        """Remove a callback added with :meth:`add_observer` (no-op if gone)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def reset_peak(self) -> None:
        """Restart peak tracking from the current total (e.g. after warm-up)."""
        self._peak = self._total

    def mark(self) -> None:
        """Restart *interval* peak tracking (feedback sampling boundary).

        The feedback controller samples occupancy once per engine wake-up;
        :attr:`peak_since_mark` is the largest total seen since the previous
        sample, so a burst that drains before the wake-up ends still
        registers as pressure.
        """
        self._interval_peak = self._total

    @property
    def peak_since_mark(self) -> int:
        """Largest total observed since the last :meth:`mark` (or ever)."""
        return self._interval_peak

    def _delta(self, amount: int) -> None:
        self._mutations += 1
        self._total += amount
        if self._total > self._peak:
            self._peak = self._total
        if self._total > self._interval_peak:
            self._interval_peak = self._total
        if self._observer is not None:
            self._observer(self._total)
        for observer in self._observers:
            observer(self._total)


class StreamBuffer:
    """A FIFO arc of the query graph, with TSM register and statistics.

    Attributes:
        name: Human-readable identifier, usually ``producer->consumer``.
        register: The consumer-side TSM register for this input.
    """

    def __init__(self, name: str = "", registry: BufferRegistry | None = None,
                 *, enforce_order: bool = True,
                 consumer_name: str = "", consumer_port: int = 0) -> None:
        """Create an empty buffer.

        Args:
            name: Identifier used in errors and debug output.
            registry: Aggregate-occupancy registry; optional for unit tests.
            enforce_order: When True (the default), pushing an element whose
                timestamp is smaller than the last pushed element's raises
                :class:`TimestampError`.  The engine relies on the
                streams-are-ordered property throughout (paper Section 1),
                so violations are bugs and surface loudly.
            consumer_name / consumer_port: The operator and input-port index
                this buffer feeds; carried as structured fields on order
                violations so handlers can locate the failure without
                parsing buffer names.
        """
        self.name = name
        self.consumer_name = consumer_name
        self.consumer_port = consumer_port
        self.register = TSMRegister()
        #: Deque entries are scalar :class:`StreamElement`\ s *or* whole
        #: :class:`~repro.core.columnar.ColumnarBlock`\ s (data rows only —
        #: punctuation never enters a block).  Scalar consumers never see a
        #: block: ``peek``/``pop`` explode a head block back into its tuples
        #: lazily, so non-columnar operators stay byte-identical for free.
        self._items: deque[StreamElement | ColumnarBlock] = deque()
        #: Scalar-equivalent length: blocks count one per live row.
        self._len = 0
        self._registry = registry
        self._enforce_order = enforce_order
        self._last_pushed_ts = LATENT_TS
        self._enqueued = 0
        self._dequeued = 0
        self._punctuation_enqueued = 0
        self._data_live = 0
        #: Optional zero-argument consumer hook invoked after any mutation
        #: (push / pop / drain / clear).  IWP operators install it to
        #: invalidate their cached TSM-gate minimum instead of recomputing
        #: ``min(gates)`` several times per execution step.  Exceptions the
        #: hook raises are isolated (counted, remembered, never propagated)
        #: so a faulty hook cannot abort a mutation that already happened —
        #: the same policy the obs bus applies to observers.
        self.on_change: Callable[[], None] | None = None
        #: Number of exceptions swallowed from :attr:`on_change` hooks.
        self.hook_errors = 0
        #: The most recent exception swallowed from an on_change hook.
        self.last_hook_error: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Introspection

    def __len__(self) -> int:
        """Scalar-equivalent length: a buffered block counts its live rows."""
        return self._len

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[StreamElement]:
        """Iterate scalar elements, flattening blocks in place (read-only)."""
        for entry in self._items:
            if isinstance(entry, ColumnarBlock):
                yield from entry.to_tuples()
            else:
                yield entry

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def registry(self) -> BufferRegistry | None:
        """The aggregate registry this buffer reports to (None standalone)."""
        return self._registry

    @property
    def enqueued_count(self) -> int:
        """Total elements ever pushed."""
        return self._enqueued

    @property
    def dequeued_count(self) -> int:
        """Total elements ever popped."""
        return self._dequeued

    @property
    def punctuation_count(self) -> int:
        """Total punctuation elements ever pushed (overhead accounting)."""
        return self._punctuation_enqueued

    @property
    def data_count(self) -> int:
        """Number of *data* tuples currently buffered (excludes punctuation)."""
        return self._data_live

    @property
    def last_pushed_ts(self) -> float:
        """Timestamp of the most recently pushed element (or LATENT_TS)."""
        return self._last_pushed_ts

    def _notify_change(self) -> None:
        """Invoke the on_change hook, isolating any exception it raises.

        The mutation that triggered the notification has already completed;
        letting a hook exception unwind here would leave callers believing
        the mutation failed (and, for IWP consumers, leave the cached
        gate-min stale because later — successful — notifications would be
        skipped).  Errors are counted and remembered instead.
        """
        if self.on_change is None:
            return
        try:
            self.on_change()
        except Exception as exc:
            self.hook_errors += 1
            self.last_hook_error = exc

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot_state(self) -> dict:
        """Versioned snapshot of buffer contents, register, and counters.

        Buffered blocks are materialized back into their scalar tuples, so
        the snapshot shape is identical whether or not the producer ran in
        block mode — recovery and sharding compose with the columnar path
        without knowing it exists.
        """
        return {
            "version": 1,
            "items": list(iter(self)),
            "register": self.register.snapshot_state(),
            "last_pushed_ts": self._last_pushed_ts,
            "enqueued": self._enqueued,
            "dequeued": self._dequeued,
            "punctuation_enqueued": self._punctuation_enqueued,
            "data_live": self._data_live,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot; registry occupancy is kept consistent."""
        if state.get("version") != 1:
            raise ValueError(f"unsupported StreamBuffer state: {state!r}")
        delta = len(state["items"]) - self._len
        self._items = deque(state["items"])
        self._len = len(state["items"])
        self.register.restore_state(state["register"])
        self._last_pushed_ts = state["last_pushed_ts"]
        self._enqueued = state["enqueued"]
        self._dequeued = state["dequeued"]
        self._punctuation_enqueued = state["punctuation_enqueued"]
        self._data_live = state["data_live"]
        if self._registry is not None and delta:
            self._registry._delta(delta)
        self._notify_change()

    # ------------------------------------------------------------------ #
    # Production / consumption

    def _order_violation(self, ts: float, last: float) -> TimestampError:
        """Build (and pre-announce) a structured out-of-order error."""
        fields = dict(operator=self.consumer_name or self.name,
                      port=self.consumer_port,
                      offending_ts=ts, last_seen_ts=last,
                      buffer=self.name, kind="out-of-order")
        if self._registry is not None:
            self._registry.notify_violation(**fields)
        return TimestampError(
            f"buffer {self.name!r}: out-of-order push ({ts} after {last})",
            **fields,
        )

    def push(self, element: StreamElement) -> None:
        """Append ``element`` at the tail (production)."""
        ts = element.ts
        if ts != LATENT_TS:
            if self._enforce_order and self._last_pushed_ts != LATENT_TS \
                    and ts < self._last_pushed_ts:
                raise self._order_violation(ts, self._last_pushed_ts)
            if ts > self._last_pushed_ts:
                self._last_pushed_ts = ts
        self._items.append(element)
        self._len += 1
        self._enqueued += 1
        if element.is_punctuation:
            self._punctuation_enqueued += 1
        else:
            self._data_live += 1
        if self._registry is not None:
            self._registry._delta(1)
        self._notify_change()

    def push_batch(self, elements: Sequence[StreamElement]) -> None:
        """Append a run of ``elements`` at the tail in one operation.

        Semantically identical to pushing each element in order, but the
        order check, live-count bookkeeping, and registry update are done
        once per run instead of once per element — the producer half of the
        micro-batched execution path.
        """
        if not elements:
            return
        last = self._last_pushed_ts
        punct = 0
        for element in elements:
            ts = element.ts
            if ts != LATENT_TS:
                if self._enforce_order and last != LATENT_TS and ts < last:
                    raise self._order_violation(ts, last)
                if ts > last:
                    last = ts
            if element.is_punctuation:
                punct += 1
        self._last_pushed_ts = last
        self._items.extend(elements)
        n = len(elements)
        self._len += n
        self._enqueued += n
        self._punctuation_enqueued += punct
        self._data_live += n - punct
        if self._registry is not None:
            self._registry._delta(n)
        self._notify_change()

    # ------------------------------------------------------------------ #
    # Columnar block transport

    def push_block(self, block: ColumnarBlock) -> None:
        """Append a whole columnar block at the tail in one operation.

        Blocks hold only data rows in timestamp order, so the order check
        reduces to comparing the block's first non-latent timestamp against
        the last pushed one, and all bookkeeping is one update per block
        instead of one per row.  Empty blocks are ignored.
        """
        n = block.count
        if not n:
            return
        first = block.first_ts()
        if first != LATENT_TS:
            if self._enforce_order and self._last_pushed_ts != LATENT_TS \
                    and first < self._last_pushed_ts:
                raise self._order_violation(first, self._last_pushed_ts)
            last = block.last_ts()
            if last > self._last_pushed_ts:
                self._last_pushed_ts = last
        self._items.append(block)
        self._len += n
        self._enqueued += n
        self._data_live += n
        if self._registry is not None:
            self._registry._delta(n)
        self._notify_change()

    def drain_block(self, limit: int,
                    max_ts: float | None = None) -> ColumnarBlock | None:
        """Dequeue up to ``limit`` consecutive data rows as one block.

        The block analog of :meth:`drain_batch`, with the same boundary
        rules: the run never crosses a punctuation tuple, and with
        ``max_ts`` it stops before the first row stamped at or above it
        (latent rows never stop a run).  Returns ``None`` when the head is
        a punctuation tuple or the buffer is empty.

        A head block is handed over whole (zero copies) when it fits the
        limits, or split by selection otherwise; a head run of scalar data
        tuples is gathered into a fresh block.  The TSM register is updated
        once with the largest timestamp drained, exactly like the scalar
        and micro-batched paths.
        """
        items = self._items
        if not items or limit <= 0:
            return None
        head = items[0]
        if isinstance(head, ColumnarBlock):
            taken = head
            rest: list[ColumnarBlock] = []
            if max_ts is not None:
                taken, tail = taken.split_below(max_ts)
                if tail is not None:
                    rest.append(tail)
                if not taken.count:
                    return None
            if taken.count > limit:
                taken, tail = taken.split_at(limit)
                rest.insert(0, tail)
            items.popleft()
            for part in reversed(rest):
                items.appendleft(part)
            self._consumed_rows(taken)
            return taken
        if head.is_punctuation:
            return None
        run = self.drain_batch(limit, max_ts)
        if not run:
            return None
        return ColumnarBlock.from_tuples(run)  # type: ignore[arg-type]

    def _consumed_rows(self, block: ColumnarBlock) -> None:
        """Bookkeeping for a block handed to the consumer."""
        last = block.last_ts()
        if last != LATENT_TS:
            self.register.update(last)
        n = block.count
        self._len -= n
        self._dequeued += n
        self._data_live -= n
        if self._registry is not None:
            self._registry._delta(-n)
        self._notify_change()

    def _explode_head(self) -> None:
        """Replace a head block with its scalar tuples, in place.

        Called lazily by the scalar accessors so operators that do not
        understand blocks (joins, reorder, strict union) consume exactly
        the elements they would have seen without block transport.  Pure
        representation change: no counters move.
        """
        block = self._items.popleft()
        assert isinstance(block, ColumnarBlock)
        self._items.extendleft(reversed(block.to_tuples()))

    def drain_batch(self, limit: int,
                    max_ts: float | None = None) -> list[StreamElement]:
        """Dequeue a run of up to ``limit`` consecutive *data* tuples.

        The run stops early — never crossing the boundary — at the first
        punctuation tuple, so punctuation is always consumed one at a time
        by the scalar path and batch boundaries coincide with ETS
        information.  When ``max_ts`` is given the run additionally stops
        before the first element stamped at or above it (latent elements,
        which carry no timestamp, never stop a run).

        The consumer-side TSM register is updated once, with the largest
        timestamp in the run — exactly the value a pop-by-pop consumption
        would have left behind.
        """
        items = self._items
        out: list[StreamElement] = []
        best = LATENT_TS
        while items and len(out) < limit:
            head = items[0]
            if isinstance(head, ColumnarBlock):
                self._explode_head()
                head = items[0]
            if head.is_punctuation:
                break
            ts = head.ts
            if ts != LATENT_TS:
                if max_ts is not None and ts >= max_ts:
                    break
                if ts > best:
                    best = ts
            out.append(items.popleft())
        if out:
            if best != LATENT_TS:
                self.register.update(best)
            n = len(out)
            self._len -= n
            self._dequeued += n
            self._data_live -= n
            if self._registry is not None:
                self._registry._delta(-n)
            self._notify_change()
        return out

    def peek(self) -> StreamElement | None:
        """Return the head element without removing it, or None when empty.

        Peeking refreshes the TSM register from the head element, matching
        the paper's "automatically updated with the timestamp value of the
        current input tuple".
        """
        if not self._items:
            return None
        if isinstance(self._items[0], ColumnarBlock):
            self._explode_head()
        head = self._items[0]
        self.register.update(head.ts)
        return head

    def pop(self) -> StreamElement:
        """Remove and return the head element (consumption)."""
        if not self._items:
            raise IndexError(f"pop from empty buffer {self.name!r}")
        if isinstance(self._items[0], ColumnarBlock):
            self._explode_head()
        head = self._items.popleft()
        self.register.update(head.ts)
        self._len -= 1
        self._dequeued += 1
        if not head.is_punctuation:
            self._data_live -= 1
        if self._registry is not None:
            self._registry._delta(-1)
        self._notify_change()
        return head

    def clear(self) -> None:
        """Discard all buffered elements (registry count is kept consistent)."""
        if self._registry is not None and self._len:
            self._registry._delta(-self._len)
        self._items.clear()
        self._len = 0
        self._data_live = 0
        self._notify_change()

    # ------------------------------------------------------------------ #
    # Timestamp gating helpers

    def head_ts(self) -> float | None:
        """Timestamp of the head element, or None when empty.

        Block-aware without exploding: a head block reports its first live
        row's timestamp, which is exactly what the scalar head would carry.
        """
        if not self._items:
            return None
        head = self._items[0]
        if isinstance(head, ColumnarBlock):
            return head.head_ts
        return head.ts

    def head_is_punctuation(self) -> bool:
        """True when the head element is punctuation (blocks never are)."""
        if not self._items:
            return False
        head = self._items[0]
        if isinstance(head, ColumnarBlock):
            return False
        return head.is_punctuation

    def gate_ts(self) -> float:
        """The timestamp this input contributes to the operator's τ.

        Per the relaxed ``more`` condition, an input contributes its head
        element's timestamp when nonempty (refreshing the register), and its
        remembered register value when empty.  Reads the head timestamp
        without exploding a head block — the register update is identical
        to what a scalar peek would do (latent heads never move it).
        """
        ts = self.head_ts()
        if ts is not None:
            self.register.update(ts)
            if ts != LATENT_TS:
                return ts
        return self.register.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StreamBuffer({self.name!r}, len={len(self._items)})"
