"""Execution tracing: observe the engine's NOS decisions.

The paper specifies the execution model as rules (Fig. 3's two-step cycle,
the Forward/Encore/Backtrack NOS rules, the Backtrack-to-source ETS hook).
A :class:`Tracer` records each decision the engine takes so tests can assert
the rules *literally* — e.g. that processing one tuple through the Fig.-2
simple path produces exactly ``execute(Q1), forward(Q2), execute(Q2),
backtrack(Q1), backtrack(source)`` — and so users can debug surprising
schedules.

Tracing is opt-in (pass ``tracer=`` to :class:`TracingEngine`) and costs one
callback per decision when enabled, nothing when not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .execution import ExecutionEngine
from .operators.base import Operator, StepResult
from .operators.source import SourceNode

__all__ = ["TraceEvent", "Tracer", "TracingEngine"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One engine decision.

    Attributes:
        kind: ``"execute"``, ``"forward"``, ``"encore"``, ``"backtrack"``,
            ``"ets"``, or ``"quiesce"``.
        operator: Name of the operator (or source) the decision concerns.
        round_id: Engine wake-up round during which it happened.
        detail: Optional extra (e.g. stalled input index for backtrack,
            whether an ETS injection succeeded).
    """

    kind: str
    operator: str
    round_id: int
    detail: str = ""


class Tracer:
    """Accumulates :class:`TraceEvent` records with light query helpers."""

    def __init__(self, capacity: int | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.capacity = capacity

    def record(self, kind: str, operator: str, round_id: int,
               detail: str = "") -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            return
        self.events.append(TraceEvent(kind, operator, round_id, detail))

    def clear(self) -> None:
        self.events.clear()

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def sequence(self) -> list[tuple[str, str]]:
        """(kind, operator) pairs in order — the usual assertion target."""
        return [(e.kind, e.operator) for e in self.events]

    def format(self) -> str:
        """Human-readable dump, one decision per line."""
        return "\n".join(
            f"[round {e.round_id}] {e.kind:10s} {e.operator}"
            + (f"  ({e.detail})" if e.detail else "")
            for e in self.events
        )


class TracingEngine(ExecutionEngine):
    """Drop-in :class:`ExecutionEngine` that reports decisions to a tracer.

    The walk logic is inherited unchanged; this class only layers the
    recording into the hook points (`_step`, `_try_ets`) and re-implements
    the continuation bookkeeping of ``_walk`` to tag Forward / Encore /
    Backtrack transitions.
    """

    def __init__(self, *args, tracer: Tracer | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.tracer = tracer if tracer is not None else Tracer()

    # -- recording hooks ------------------------------------------------ #

    def _step(self, op: Operator) -> StepResult:
        result = super()._step(op)
        self.tracer.record("execute", op.name, self._round_id,
                           detail="punct" if result.consumed_punctuation
                           else "data")
        return result

    def _try_ets(self, source: SourceNode) -> bool:
        injected = super()._try_ets(source)
        self.tracer.record("ets", source.name, self._round_id,
                           detail="injected" if injected else "declined")
        return injected

    # -- traced walk ----------------------------------------------------- #

    def _walk(self, start: Operator) -> bool:  # noqa: C901 - mirrors base
        progress = False
        current = start
        execute = True
        while True:
            self._pump_due()
            if isinstance(current, SourceNode):
                nxt = self._forward_target(current)
                if nxt is not None:
                    self.tracer.record("forward", nxt.name, self._round_id)
                    current, execute = nxt, True
                    continue
                if self._try_ets(current):
                    progress = True
                    continue
                return progress
            if execute and current.more():
                self._step(current)
                progress = True
            nxt = self._forward_target(current)
            if nxt is not None:
                self.tracer.record("forward", nxt.name, self._round_id)
                current, execute = nxt, True
                continue
            if current.more():
                self.tracer.record("encore", current.name, self._round_id)
                execute = True
                continue
            if not current.inputs:
                return progress
            j = current.stalled_input_index()
            pred = current.predecessors[j]
            if pred is None:
                return progress
            self.tracer.record("backtrack", pred.name, self._round_id,
                               detail=f"stalled input {j} of {current.name}")
            current, execute = pred, False

    def wakeup(self, entry: Operator | None = None) -> None:
        super().wakeup(entry)
        self.tracer.record("quiesce", "-", self._round_id)


def summarize(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Count events by kind — a quick sanity surface for tests and examples."""
    counts: dict[str, int] = {}
    for e in events:
        counts[e.kind] = counts.get(e.kind, 0) + 1
    return counts
