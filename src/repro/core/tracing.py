"""Execution tracing: observe the engine's NOS decisions.

The paper specifies the execution model as rules (Fig. 3's two-step cycle,
the Forward/Encore/Backtrack NOS rules, the Backtrack-to-source ETS hook).
A :class:`Tracer` records each decision the engine takes so tests can assert
the rules *literally* — e.g. that processing one tuple through the Fig.-2
simple path produces exactly ``execute(Q1), forward(Q2), execute(Q2),
backtrack(Q1), backtrack(source)`` — and so users can debug surprising
schedules.

Since the :mod:`repro.obs` event bus landed, the tracer is an ordinary
observer: attach ``TraceObserver(tracer)`` via
``ExecutionEngine(observers=[...])`` and the engine's single walk
implementation feeds it.  :class:`TracingEngine` remains as a deprecated
shim that does exactly that wiring — its former hand-copied ``_walk``
override (which silently drifted from the real engine, e.g. never learning
about micro-batching) is gone.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable

from ..obs.adapters import TraceObserver
from .execution import ExecutionEngine

__all__ = ["TraceEvent", "Tracer", "TracingEngine"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One engine decision.

    Attributes:
        kind: ``"execute"``, ``"forward"``, ``"encore"``, ``"backtrack"``,
            ``"ets"``, ``"quiesce"``, a fault-path kind (``"degrade"``,
            ``"fallback"``, ``"resync"``, ``"quarantine"``,
            ``"violation"``), or the terminal ``"truncated"`` marker.
        operator: Name of the operator (or source) the decision concerns.
        round_id: Engine wake-up round during which it happened.
        detail: Optional extra (e.g. stalled input index for backtrack,
            whether an ETS injection succeeded).
    """

    kind: str
    operator: str
    round_id: int
    detail: str = ""


class Tracer:
    """Accumulates :class:`TraceEvent` records with light query helpers.

    Args:
        capacity: Optional cap on recorded events.  Hitting the cap no
            longer loses information silently: a terminal ``"truncated"``
            event marks the cut and :attr:`dropped` counts every event
            discarded after it.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    @property
    def truncated(self) -> bool:
        """Did recording hit the capacity limit?"""
        return self.dropped > 0

    def record(self, kind: str, operator: str, round_id: int,
               detail: str = "") -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            if not self.dropped:
                self.events.append(TraceEvent(
                    "truncated", "-", round_id,
                    detail=f"capacity {self.capacity} reached; "
                           "subsequent events dropped"))
            self.dropped += 1
            return
        self.events.append(TraceEvent(kind, operator, round_id, detail))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def sequence(self) -> list[tuple[str, str]]:
        """(kind, operator) pairs in order — the usual assertion target."""
        return [(e.kind, e.operator) for e in self.events]

    def format(self) -> str:
        """Human-readable dump, one decision per line."""
        return "\n".join(
            f"[round {e.round_id}] {e.kind:10s} {e.operator}"
            + (f"  ({e.detail})" if e.detail else "")
            for e in self.events
        )


class TracingEngine(ExecutionEngine):
    """Deprecated: use ``ExecutionEngine(observers=[TraceObserver(tracer)])``.

    This shim only performs that wiring (plus a :class:`DeprecationWarning`)
    so old call sites keep producing identical trace streams through the
    event bus.  It no longer overrides any engine internals.
    """

    def __init__(self, *args, tracer: Tracer | None = None, **kwargs) -> None:
        warnings.warn(
            "TracingEngine is deprecated; pass "
            "ExecutionEngine(observers=[TraceObserver(tracer)]) — or "
            "observers=[...] via repro.api.Pipeline.engine() — instead",
            DeprecationWarning, stacklevel=2)
        self.tracer = tracer if tracer is not None else Tracer()
        observers = list(kwargs.pop("observers", None) or ())
        observers.append(TraceObserver(self.tracer))
        super().__init__(*args, observers=observers, **kwargs)


def summarize(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Count events by kind — a quick sanity surface for tests and examples."""
    counts: dict[str, int] = {}
    for e in events:
        counts[e.kind] = counts.get(e.kind, 0) + 1
    return counts
